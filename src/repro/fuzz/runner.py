"""Scenario materialisation: one :class:`FuzzScenario` -> one sim run.

:func:`run_scenario` builds the whole stack -- zone graph on
authoritative servers, one recursive resolver (optionally wrapped in a
DCC shim), benign clients, an adversary, a fault schedule -- runs it
with SimSan armed, and returns a :class:`FuzzObservations` that the
oracles in :mod:`repro.fuzz.oracles` judge.

Instrumentation rides the probe hooks the components already expose
(``ResolverCache.stale_probe``, ``HealthRegistry.transition_probe``)
plus the clients' per-request ground-truth records, so the run under
observation is byte-identical to an unobserved one: probes append to
lists, never schedule events.

``inject_bug`` re-introduces known-fixed defects on purpose (the
fuzzer's own self-test and the source of the checked-in regression
corpus); replaying a corpus scenario *without* injection demonstrates
the fix.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import sanitize
from repro.dcc.mopifq import MopiFqConfig
from repro.dcc.shim import DccConfig, DccShim
from repro.dnscore.message import Question
from repro.dnscore.name import Name
from repro.dnscore.rdata import RRType
from repro.netsim.faults import FaultInjector, fault_span
from repro.netsim.link import Network
from repro.netsim.sim import Simulator
from repro.sanitize import SimSanViolation
from repro.server.authoritative import AuthoritativeServer
from repro.server.health import HealthConfig
from repro.server.overload import OverloadConfig
from repro.server.ratelimit import RateLimitAction, RateLimitConfig
from repro.server.resolver import RecursiveResolver, ResolverConfig
from repro.workloads.clients import ClientConfig, StubClient
from repro.workloads.patterns import (
    FanoutPattern,
    FixedPattern,
    NxdomainPattern,
    QueryPattern,
    WildcardPattern,
)
from repro.workloads.zonegen import (
    DEAD_ADDRESS,
    ZoneGraph,
    build_ff_attacker_zone,
    build_zone_graph,
    graph_server_addr,
    validate_zone_graph,
)

from repro.fuzz.generate import RESOLVER_ADDR
from repro.fuzz.scenario import FuzzScenario

#: bug-injection switches understood by :func:`run_scenario`
KNOWN_BUGS = ("dangling-glueless",)

#: FF adversary topology (outside the ``graph_server_addr`` range)
ATTACKER_ORIGIN = "evil."
ATTACKER_ANS_ADDR = "10.0.40.240"
ADVERSARY_CLIENT_ADDR = "10.1.59.1"

#: liveness drain: virtual seconds past the last client stop by which
#: every pending request must have resolved one way or the other
DRAIN_WINDOW = 30.0

#: virtual seconds after the fault envelope ends before the recovery
#: window opens (hold-downs expire, breakers re-close, retries settle)
FAULT_SETTLE = 2.0

#: ceiling on events per expected client request (the termination
#: oracle's runaway-loop detector; FF amplification plus retries stay
#: far below this)
EVENTS_PER_REQUEST = 1_000
EVENT_CAP_FLOOR = 200_000


class NamePoolPattern(QueryPattern):
    """Benign traffic: a fixed pool of known-resolvable names."""

    tag = "POOL"

    def __init__(self, names: List[Name], rrtype: RRType = RRType.A) -> None:
        if not names:
            raise ValueError("a name pool needs at least one name")
        self.names = list(names)
        self.rrtype = rrtype

    def next_question(self, rng: random.Random) -> Question:
        return Question(rng.choice(self.names), self.rrtype)


# ----------------------------------------------------------------------
# observations
# ----------------------------------------------------------------------

@dataclass
class StaleServe:
    """One serve-stale answer: how far past expiry the entry was."""

    name: str
    rrtype: str
    age_past_expiry: float
    window: float


@dataclass
class BreakerTransition:
    """One circuit-breaker state change at an upstream health entry."""

    server: str
    old_state: str
    new_state: str
    at: float


@dataclass
class ClientOutcome:
    """Ground truth for one benign client (adversaries are not judged)."""

    name: str
    zone: str
    requests: int = 0
    successes: int = 0
    timeouts: int = 0
    #: success ratio over the whole traffic window
    success_ratio: float = 0.0
    #: success ratio before the adversary starts (whole window if none)
    clean_ratio: float = 0.0
    #: success ratio while the adversary is active (0 when none)
    attacked_ratio: float = 0.0
    #: success ratio after the fault envelope ends + settle (0 when the
    #: scenario has no faults or the window is empty)
    recovered_ratio: float = 0.0
    pending_after_drain: int = 0


@dataclass
class FuzzObservations:
    """Everything the oracles see about one run."""

    scenario_id: str = ""
    injected_bug: Optional[str] = None
    events_processed: int = 0
    event_cap: int = 0
    event_cap_hit: bool = False
    #: unexpected exception out of build or run (type: message)
    crash: Optional[str] = None
    simsan_violations: List[str] = field(default_factory=list)
    scheduler_errors: List[str] = field(default_factory=list)
    clients: List[ClientOutcome] = field(default_factory=list)
    stale_serves: List[StaleServe] = field(default_factory=list)
    breaker_transitions: List[BreakerTransition] = field(default_factory=list)
    resolver_pending_after_drain: int = 0
    resolver_stats: Dict[str, int] = field(default_factory=dict)
    #: aggregate fluid conservation ledger (empty = no cohorts ran);
    #: offered == hits + upstream + timeouts + backlog up to the
    #: residual, which the conservation oracle bounds
    fluid_ledger: Dict[str, float] = field(default_factory=dict)
    #: the bridge's per-tick state digest ("" = no cohorts ran)
    fluid_digest: str = ""
    fluid_ticks: int = 0

    def to_dict(self) -> Dict:
        from repro.fuzz.serialize import encode_dataclass

        return encode_dataclass(self)

    def digest_fields(self) -> Dict:
        """The determinism surface: everything except free-text crash
        detail (exception reprs can embed addresses)."""
        data = self.to_dict()
        data["crash"] = None if self.crash is None else self.crash.split(":")[0]
        return data


# ----------------------------------------------------------------------
# build + run
# ----------------------------------------------------------------------

def run_scenario(
    scenario: FuzzScenario,
    inject_bug: Optional[str] = None,
    sanitize_run: bool = True,
) -> FuzzObservations:
    """Materialise, run, and observe one scenario.

    Never raises for in-sim failures: SimSan violations, scheduler
    invariant breaks, and unexpected exceptions all land in the returned
    observations for the oracles to judge.
    """
    if inject_bug is not None and inject_bug not in KNOWN_BUGS:
        raise ValueError(f"unknown bug injection {inject_bug!r} (known: {KNOWN_BUGS})")
    obs = FuzzObservations(scenario_id=scenario.scenario_id, injected_bug=inject_bug)
    previous = sanitize.ENABLED
    if sanitize_run:
        sanitize.enable()
    try:
        harness = None
        try:
            harness = _build(scenario, inject_bug)
            _run(scenario, harness, obs)
        except SimSanViolation as violation:
            obs.simsan_violations.append(str(violation))
        except Exception as exc:  # the no-crash oracle's raw material
            obs.crash = f"{type(exc).__name__}: {exc}"
        if harness is not None:
            _collect(scenario, harness, obs)
    finally:
        sanitize.ENABLED = previous
    return obs


class _Harness:
    """The built topology, kept together for the collect phase."""

    __slots__ = ("sim", "net", "injector", "graph", "resolver", "shim", "clients",
                 "bridge")

    def __init__(self) -> None:
        self.sim: Simulator
        self.net: Network
        self.injector: FaultInjector
        self.graph: ZoneGraph
        self.resolver: RecursiveResolver
        self.shim: Optional[DccShim] = None
        self.clients: Dict[str, StubClient] = {}
        #: fluid background mass, when the scenario carries cohorts
        self.bridge = None


def _build(scenario: FuzzScenario, inject_bug: Optional[str]) -> _Harness:
    h = _Harness()
    h.sim = Simulator(seed=scenario.seed)
    h.net = Network(h.sim)
    h.injector = FaultInjector(h.net)

    broken_graph = inject_bug == "dangling-glueless"
    h.graph = build_zone_graph(
        scenario.zones,
        validate=not broken_graph,
        omit_glueless_addresses=broken_graph,
    )
    adversary = scenario.adversary
    zone_addrs = [
        graph_server_addr(i) for i in range(len(scenario.zones))
    ]

    if adversary.strategy == "wc" and adversary.zone in h.graph.zones:
        # "wc" must mean wildcard-covered: install the subtree if the
        # drawn zone spec happened to lack one (deterministic, part of
        # the scenario's meaning, identical on replay).
        zone = h.graph.zones[adversary.zone]
        if not zone.lookup(zone.origin.child("wc").child("probe"), RRType.A).answers:
            zone.add_wildcard_a("wc", "192.0.2.8", ttl=4)

    attacker_zone = None
    if adversary.strategy == "ff" and adversary.zone in h.graph.zones:
        target_zone = h.graph.zones[adversary.zone]
        # FF leaf NS targets live under ff.<target>; a dead-address
        # wildcard there reproduces the paper's amplification setup
        # (queries land on the target's channel, answers go nowhere).
        target_zone.add_wildcard_a("ff", DEAD_ADDRESS, ttl=1)
        attacker_zone = build_ff_attacker_zone(
            ATTACKER_ORIGIN,
            adversary.zone,
            "ns1",
            ATTACKER_ANS_ADDR,
            instances=adversary.ff_instances,
            fanout=adversary.ff_fanout,
        )
        root = h.graph.zones["."]
        root.add_ns(ATTACKER_ORIGIN, f"ns1.{ATTACKER_ORIGIN}")
        root.add_a(f"ns1.{ATTACKER_ORIGIN}", ATTACKER_ANS_ADDR)
        if not broken_graph:
            validate_zone_graph(list(h.graph.zones.values()) + [attacker_zone])

    # Authoritative side: the spec'd zone servers carry the vanilla
    # channel cap (BIND-RRL-style ingress limit); root/infra stay open.
    for addr, zones in h.graph.server_zones().items():
        limit = None
        if addr in zone_addrs:
            limit = RateLimitConfig(
                rate=scenario.dcc.channel_capacity,
                action=RateLimitAction.DROP,
                mode="window",
            )
        h.net.attach(AuthoritativeServer(addr, zones=zones, ingress_limit=limit))
    if attacker_zone is not None:
        h.net.attach(AuthoritativeServer(ATTACKER_ANS_ADDR, zones=[attacker_zone]))

    h.resolver = _build_resolver(scenario)
    h.net.attach(h.resolver)

    if scenario.dcc.enabled:
        dk = scenario.dcc
        h.shim = DccShim(
            h.resolver,
            DccConfig(
                scheduler=MopiFqConfig(
                    max_poq_depth=dk.max_poq_depth,
                    max_round=dk.max_round,
                    pool_capacity=dk.pool_capacity,
                    default_channel_rate=dk.channel_capacity * 10,
                ),
                signaling=dk.signaling,
            ),
        )
        for addr in zone_addrs:
            h.shim.set_channel_capacity(
                addr, dk.channel_capacity, max(1.0, dk.channel_capacity * 0.1)
            )

    for spec in scenario.faults:
        h.injector.add(spec)

    for i, spec in enumerate(scenario.clients):
        pool = h.graph.resolvable.get(spec.zone, [])[: max(1, spec.pool_size)]
        if not pool:
            # Degenerate zone spec (no leaves, no chain): query the apex.
            pool = [h.graph.zones[spec.zone].origin] if spec.zone in h.graph.zones else [Name.root()]
        client = StubClient(
            f"10.1.50.{i + 1}",
            NamePoolPattern(pool),
            ClientConfig(
                rate=spec.rate,
                start=spec.start,
                stop=min(spec.stop, scenario.duration),
                resolvers=[RESOLVER_ADDR],
                request_timeout=scenario.client_timeout,
                max_attempts=scenario.client_attempts,
            ),
        )
        h.net.attach(client)
        h.clients[spec.name] = client

    if adversary.strategy != "none":
        attacker = StubClient(
            ADVERSARY_CLIENT_ADDR,
            _adversary_pattern(adversary, h.graph),
            ClientConfig(
                rate=adversary.rate,
                start=adversary.start,
                stop=min(adversary.stop, scenario.duration),
                resolvers=[RESOLVER_ADDR],
                request_timeout=scenario.client_timeout,
                max_attempts=1,
            ),
        )
        h.net.attach(attacker)
        h.clients["__adversary__"] = attacker

    if scenario.fluid_cohorts:
        _build_fluid(scenario, h)
    return h


def _build_fluid(scenario: FuzzScenario, h: _Harness) -> None:
    """Mount the scenario's fluid cohorts on the hybrid core.

    Channel buckets come from the DCC scheduler when the shim is on
    (fluid load then contends with packet flows for the same tokens),
    otherwise each destination gets a private bucket at the scenario's
    channel capacity.  Raises (-> the no-crash oracle) when numpy is
    missing; the default generator never draws cohorts, so only
    explicitly-fluid scenarios ever take this path.
    """
    from repro.fluid import FluidBridge, build_cohorts, require_numpy
    from repro.util.tokenbucket import TokenBucket

    require_numpy()
    bridge = FluidBridge(h.sim, stop_at=scenario.duration + scenario.grace)
    capacity = scenario.dcc.channel_capacity
    for spec in scenario.fluid_cohorts:
        if spec.destination not in bridge.channels:
            if h.shim is not None:
                bucket = h.shim.scheduler.channel_bucket(spec.destination)
            else:
                bucket = TokenBucket(rate=capacity, burst=max(1.0, capacity * 0.1))
            bridge.add_channel(spec.destination, bucket)
    for cohort in build_cohorts(scenario.fluid_cohorts, scenario.seed):
        bridge.add_cohort(cohort)
    if h.resolver.overload is not None:
        bridge.pressure_sinks.append(_FluidPressure(h.resolver).push)
    h.bridge = bridge


class _FluidPressure:
    """Bound-method pressure sink (reprolint R4: no closures on ticks)."""

    __slots__ = ("resolver",)

    def __init__(self, resolver: RecursiveResolver) -> None:
        self.resolver = resolver

    def push(self, now: float, backlog: float) -> None:
        self.resolver.overload.external_pressure = backlog


def _build_resolver(scenario: FuzzScenario) -> RecursiveResolver:
    rk = scenario.resolver
    config = ResolverConfig(
        qname_minimization=rk.qname_minimization,
        query_timeout=rk.query_timeout,
        serve_stale_window=rk.serve_stale_window,
        health=HealthConfig(
            mode=rk.health_mode,
            base_timeout=rk.query_timeout,
            failure_threshold=rk.failure_threshold,
        ),
        overload=(
            OverloadConfig(
                high_watermark=rk.high_watermark,
                low_watermark=min(rk.low_watermark, rk.high_watermark),
            )
            if rk.overload
            else None
        ),
    )
    from repro.workloads.zonegen import GRAPH_ROOT_ADDR

    resolver = RecursiveResolver(RESOLVER_ADDR, config)
    resolver.add_root_hint("a.root-servers.net.", GRAPH_ROOT_ADDR)
    return resolver


def _adversary_pattern(adversary, graph: ZoneGraph) -> QueryPattern:
    zone = adversary.zone
    if adversary.strategy == "nx":
        return NxdomainPattern(zone)
    if adversary.strategy == "wc":
        return WildcardPattern(zone)
    if adversary.strategy == "chain":
        # Hammer the CNAME-chasing path: the chain head re-resolves on
        # every TTL lapse (generated chains carry short TTLs); zones
        # without a chain degrade to an apex-hammering fixed pattern.
        origin = graph.zones[zone].origin if zone in graph.zones else Name.root()
        names = graph.resolvable.get(zone, [])
        head = next((n for n in names if str(n).startswith("c0.")), None)
        return FixedPattern(head if head is not None else origin)
    if adversary.strategy == "ff":
        return FanoutPattern(ATTACKER_ORIGIN, adversary.ff_instances)
    raise ValueError(f"unknown adversary strategy {adversary.strategy!r}")


def _event_cap(scenario: FuzzScenario) -> int:
    expected = sum(
        max(0.0, min(spec.stop, scenario.duration) - spec.start) * spec.rate
        for spec in scenario.clients
    )
    adversary = scenario.adversary
    if adversary.strategy != "none":
        expected += max(0.0, min(adversary.stop, scenario.duration) - adversary.start) * adversary.rate
    return max(EVENT_CAP_FLOOR, int(expected) * EVENTS_PER_REQUEST)


def _run(scenario: FuzzScenario, h: _Harness, obs: FuzzObservations) -> None:
    rk = scenario.resolver
    h.resolver.cache.stale_probe = lambda name, rrtype, age: obs.stale_serves.append(
        StaleServe(str(name), rrtype.name, age, rk.serve_stale_window)
    )
    h.resolver.health.transition_probe = (
        lambda server, old, new, now: obs.breaker_transitions.append(
            BreakerTransition(server, old.value, new.value, now)
        )
    )
    for client in h.clients.values():
        client.start()
    if h.bridge is not None:
        h.bridge.start()
    obs.event_cap = _event_cap(scenario)
    h.sim.run(until=scenario.duration + scenario.grace, max_events=obs.event_cap)
    # Liveness drain: traffic has stopped; anything still pending after
    # a generous window is a stuck request, not a slow one.
    if h.sim.events_processed < obs.event_cap:
        h.sim.run(
            until=scenario.duration + DRAIN_WINDOW,
            max_events=obs.event_cap - h.sim.events_processed,
        )


def _collect(scenario: FuzzScenario, h: _Harness, obs: FuzzObservations) -> None:
    obs.events_processed = h.sim.events_processed
    obs.event_cap_hit = bool(obs.event_cap) and h.sim.events_processed >= obs.event_cap
    obs.resolver_pending_after_drain = len(h.resolver._pending_requests)
    obs.resolver_stats = {
        name: value
        for name, value in dataclasses.asdict(h.resolver.stats).items()
        if isinstance(value, int)
    }
    if h.shim is not None:
        try:
            h.shim.scheduler.check_invariants()
        except AssertionError as exc:
            obs.scheduler_errors.append(str(exc))
    if h.bridge is not None:
        obs.fluid_ledger = h.bridge.ledger()
        obs.fluid_digest = h.bridge.digest()
        obs.fluid_ticks = h.bridge.ticks

    adversary = scenario.adversary
    attacked = adversary.strategy != "none"
    span = fault_span(scenario.faults)
    for spec in scenario.clients:
        client = h.clients.get(spec.name)
        if client is None:
            continue
        stop = min(spec.stop, scenario.duration)
        clean_until = min(adversary.start, stop) if attacked else stop
        recovered = 0.0
        if span is not None:
            recovery_from = span[1] + FAULT_SETTLE
            if recovery_from < stop:
                recovered = client.success_ratio(recovery_from, stop)
        outcome = ClientOutcome(
            name=spec.name,
            zone=spec.zone,
            requests=len(client.records),
            successes=sum(1 for r in client.records if r.success),
            timeouts=sum(1 for r in client.records if r.timed_out),
            success_ratio=client.success_ratio(spec.start, stop),
            clean_ratio=client.success_ratio(spec.start, clean_until),
            attacked_ratio=(
                client.success_ratio(adversary.start, stop) if attacked else 0.0
            ),
            recovered_ratio=recovered,
            pending_after_drain=len(client._pending),
        )
        obs.clients.append(outcome)
    attacker = h.clients.get("__adversary__")
    if attacker is not None:
        obs.clients.append(
            ClientOutcome(
                name="__adversary__",
                zone=adversary.zone,
                requests=len(attacker.records),
                successes=sum(1 for r in attacker.records if r.success),
                timeouts=sum(1 for r in attacker.records if r.timed_out),
                success_ratio=attacker.success_ratio(adversary.start, scenario.duration),
                clean_ratio=0.0,
                attacked_ratio=0.0,
                pending_after_drain=len(attacker._pending),
            )
        )
