"""Property-based scenario fuzzing with invariant oracles.

Self-contained (seeded-PRNG, no external fuzzing dependency) engine
that draws random DNS attack/defense scenarios, runs them through the
simulator with SimSan armed, checks invariant oracles, greedily shrinks
any violation, and maintains a replayable JSON regression corpus.

Entry points: :func:`repro.fuzz.engine.fuzz` (the loop),
:func:`repro.fuzz.runner.run_scenario` (one scenario),
:func:`repro.fuzz.corpus.replay` (one corpus file), and the
``repro fuzz`` CLI subcommand.
"""

from repro.fuzz.engine import FuzzReport, fuzz, observation_digest
from repro.fuzz.oracles import ALL_ORACLES, Violation, check_all
from repro.fuzz.runner import FuzzObservations, run_scenario
from repro.fuzz.scenario import FuzzScenario

__all__ = [
    "ALL_ORACLES",
    "FuzzObservations",
    "FuzzReport",
    "FuzzScenario",
    "Violation",
    "check_all",
    "fuzz",
    "observation_digest",
    "run_scenario",
]
