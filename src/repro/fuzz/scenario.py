"""The fuzzer's scenario space: one serializable description per run.

A :class:`FuzzScenario` is the *entire* input of one fuzz iteration --
zone graph, client population, adversary strategy, fault schedule, and
resolver/defense configuration.  Everything is a plain dataclass (or a
list of the fault-spec dataclasses from :mod:`repro.netsim.faults`), so
a scenario round-trips through JSON bit-for-bit: shrunk counterexamples
are checked into ``tests/regressions/`` and replayed by tier-1 with no
generator in the loop.

The paper connection: DCC's claim is *strategy-agnostic* bounded
collateral damage (Section 1, "any adversarial strategy").  Hand-coded
figure scenarios sample four strategies; this scenario space samples
the cross product of strategies x topologies x fault schedules x
defense configs, and the oracles in :mod:`repro.fuzz.oracles` check the
claim on every draw.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List

# The fault-spec classes themselves must be importable here:
# ``decode_dataclass`` resolves this module's ``List[FaultSpec]`` hint
# (a union of forward references) in this namespace.
from repro.netsim.faults import (
    FaultSpec,
    LinkDegradation,
    NodeOutage,
    Partition,
    schedule_from_dicts,
    schedule_to_dicts,
)
# Also anchors the ``List[CohortSpec]`` hint for decode_dataclass; the
# spec is plain-dataclass data, so scenarios stay serializable (and
# runnable, modulo a skip) without numpy.
from repro.fluid.cohort import CohortSpec
from repro.workloads.zonegen import ZoneNodeSpec

from repro.fuzz.serialize import decode_dataclass

#: the concrete fault-spec types behind ``FaultSpec`` (also anchors the
#: imports that hint resolution needs)
FAULT_TYPES = (LinkDegradation, Partition, NodeOutage)

#: adversary strategies the generator draws from ("none" = clean run)
ADVERSARY_STRATEGIES = ("none", "nx", "wc", "chain", "ff")


@dataclass
class BenignClientSpec:
    """One well-behaved traffic source, pinned to a zone's name pool."""

    name: str
    zone: str  # origin text of the zone whose names it queries
    rate: float = 20.0
    start: float = 0.0
    stop: float = 8.0
    #: names cycled through (popular, cache-hittable traffic); the
    #: runner samples them from the zone's resolvable set
    pool_size: int = 4


@dataclass
class AdversarySpec:
    """One attacker, parameterised by strategy (paper Section 2.3)."""

    strategy: str = "none"  # one of ADVERSARY_STRATEGIES
    zone: str = ""  # origin of the targeted (nx/wc/chain) or owned (ff) zone
    rate: float = 200.0
    start: float = 2.0
    stop: float = 8.0
    #: FF-only: nested NS fan-out width and instance count
    ff_fanout: int = 4
    ff_instances: int = 16

    def __post_init__(self) -> None:
        if self.strategy not in ADVERSARY_STRATEGIES:
            raise ValueError(f"unknown adversary strategy {self.strategy!r}")


@dataclass
class ResolverKnobs:
    """The defended stack's configuration axes the fuzzer explores."""

    health_mode: str = "legacy"  # "legacy" | "adaptive"
    serve_stale_window: float = 0.0
    overload: bool = False
    high_watermark: int = 128
    low_watermark: int = 64
    qname_minimization: bool = False
    query_timeout: float = 0.8
    failure_threshold: int = 5


@dataclass
class DccKnobs:
    """DCC shim on/off and its channel budget."""

    enabled: bool = False
    signaling: bool = True
    channel_capacity: float = 300.0
    max_poq_depth: int = 50
    max_round: int = 75
    pool_capacity: int = 20_000


@dataclass
class FuzzScenario:
    """One complete, replayable fuzz input."""

    seed: int = 0
    duration: float = 8.0
    grace: float = 3.0
    zones: List[ZoneNodeSpec] = field(default_factory=list)
    clients: List[BenignClientSpec] = field(default_factory=list)
    adversary: AdversarySpec = field(default_factory=AdversarySpec)
    faults: List[FaultSpec] = field(default_factory=list)
    resolver: ResolverKnobs = field(default_factory=ResolverKnobs)
    dcc: DccKnobs = field(default_factory=DccKnobs)
    client_timeout: float = 1.5
    client_attempts: int = 1
    #: fluid background mass riding the hybrid core (empty = pure
    #: packet scenario; the default generator does not draw these, so
    #: corpus digests stay numpy-independent)
    fluid_cohorts: List[CohortSpec] = field(default_factory=list)

    # ------------------------------------------------------------------
    # round-trip serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        import dataclasses

        from repro.fuzz.serialize import encode

        # Fault specs carry frozenset groups and a kind tag, zone specs
        # are __slots__ classes: both have their own codecs; the rest of
        # the fields go through the generic dataclass encoder.
        data = {
            f.name: encode(getattr(self, f.name), f"FuzzScenario.{f.name}")
            for f in dataclasses.fields(self)
            if f.name not in ("faults", "zones")
        }
        data["faults"] = schedule_to_dicts(self.faults)
        data["zones"] = [spec.to_dict() for spec in self.zones]
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "FuzzScenario":
        payload = dict(data)
        faults = schedule_from_dicts(payload.pop("faults", []))
        zones = [ZoneNodeSpec.from_dict(d) for d in payload.pop("zones", [])]
        scenario = decode_dataclass(cls, payload)
        scenario.faults = faults
        scenario.zones = zones
        return scenario

    def canonical_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @property
    def scenario_id(self) -> str:
        """Content hash: equal scenarios hash equal across processes."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()[:16]

    # ------------------------------------------------------------------
    # structural summaries (shrinker progress metric, log lines)
    # ------------------------------------------------------------------
    def size(self) -> int:
        """A coarse structural size the shrinker drives towards zero."""
        return (
            len(self.zones) * 4
            + len(self.clients) * 2
            + len(self.faults) * 2
            + len(self.fluid_cohorts) * 2
            + (0 if self.adversary.strategy == "none" else 2)
            + sum(spec.leaf_names + spec.chain_len for spec in self.zones)
            + int(self.duration)
        )

    def describe(self) -> str:
        return (
            f"zones={len(self.zones)} clients={len(self.clients)} "
            f"adversary={self.adversary.strategy} faults={len(self.faults)} "
            f"dcc={'on' if self.dcc.enabled else 'off'} "
            f"health={self.resolver.health_mode} "
            f"stale={self.resolver.serve_stale_window:g} "
            f"duration={self.duration:g}s"
        )
