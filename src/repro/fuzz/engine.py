"""The fuzz loop: draw, run, judge, shrink, record.

:func:`fuzz` is deliberately free of wall-clock reads and global
randomness (it lives in a sim-pure fragment): per-iteration sub-seeds
come from SHA-256 over the master seed, and the optional time budget
uses an *injected* clock callable supplied by the CLI.  Consequently
``fuzz(master_seed=S, iterations=N)`` produces a byte-identical verdict
log -- and therefore an identical digest -- on every machine, which is
what makes a CI fuzz-smoke job meaningfully diffable.

The verdict log is JSON Lines, one record per iteration plus one per
shrink, finished by a summary record carrying the log digest.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.fuzz.corpus import counterexample_record, save_counterexample
from repro.fuzz.generate import derive_seed, generate_scenario, scenario_for
from repro.fuzz.oracles import Violation, check_all
from repro.fuzz.runner import FuzzObservations, run_scenario
from repro.fuzz.scenario import FuzzScenario
from repro.fuzz.shrink import DEFAULT_BUDGET, shrink


def observation_digest(obs: FuzzObservations) -> str:
    """Deterministic fingerprint of one run's observable behaviour."""
    payload = json.dumps(obs.digest_fields(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass
class Counterexample:
    """One violation the engine found, after minimisation."""

    iteration: int
    sub_seed: int
    scenario: FuzzScenario
    violations: List[Violation]
    shrink_runs: int
    original_size: int
    path: Optional[str] = None


@dataclass
class FuzzReport:
    """Outcome of one engine invocation."""

    master_seed: int
    iterations_requested: int
    iterations_run: int = 0
    counterexamples: List[Counterexample] = field(default_factory=list)
    log_lines: List[str] = field(default_factory=list)
    stopped_by: str = "iterations"  # or "time-budget"
    #: SHA-256 over the verdict log up to (excluding) the summary line,
    #: which itself carries this value (the determinism contract)
    digest: str = ""

    @property
    def ok(self) -> bool:
        return not self.counterexamples

    def seal(self) -> None:
        """Fix the digest over the lines emitted so far."""
        payload = "\n".join(self.log_lines) + "\n" if self.log_lines else ""
        self.digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def summary_line(self) -> str:
        return json.dumps(
            {
                "event": "summary",
                "master_seed": self.master_seed,
                "iterations": self.iterations_run,
                "counterexamples": len(self.counterexamples),
                "stopped_by": self.stopped_by,
                "digest": self.digest,
            },
            sort_keys=True,
        )


def fuzz(
    master_seed: int,
    iterations: int,
    inject_bug: Optional[str] = None,
    shrink_budget: int = DEFAULT_BUDGET,
    corpus_dir: Optional[str] = None,
    clock: Optional[Callable[[], float]] = None,
    time_budget: Optional[float] = None,
    on_line: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Run up to ``iterations`` scenario draws from ``master_seed``.

    ``clock``/``time_budget`` bound wall time without the engine ever
    reading a clock itself; ``on_line`` streams verdict-log lines as
    they are produced (the CLI's live tail).
    """
    report = FuzzReport(master_seed=master_seed, iterations_requested=iterations)
    started = clock() if clock is not None and time_budget is not None else None

    def emit(record: Dict) -> None:
        line = json.dumps(record, sort_keys=True)
        report.log_lines.append(line)
        if on_line is not None:
            on_line(line)

    for iteration in range(iterations):
        if started is not None and clock() - started >= time_budget:
            report.stopped_by = "time-budget"
            break
        sub_seed = derive_seed(master_seed, iteration)
        scenario = scenario_for(master_seed, iteration)
        observations = run_scenario(scenario, inject_bug=inject_bug)
        violations = check_all(scenario, observations)
        report.iterations_run = iteration + 1
        emit(
            {
                "event": "run",
                "iteration": iteration,
                "sub_seed": sub_seed,
                "scenario_id": scenario.scenario_id,
                "scenario": scenario.describe(),
                "size": scenario.size(),
                "verdict": "violation" if violations else "ok",
                "oracles": sorted({v.oracle for v in violations}),
                "digest": observation_digest(observations),
            }
        )
        if not violations:
            continue
        counterexample = _minimise(
            scenario, violations, iteration, sub_seed, inject_bug, shrink_budget
        )
        if corpus_dir is not None:
            record = counterexample_record(
                counterexample.scenario,
                counterexample.violations,
                master_seed=master_seed,
                iteration=iteration,
                injected_bug=inject_bug,
            )
            counterexample.path = save_counterexample(corpus_dir, record)
        report.counterexamples.append(counterexample)
        emit(
            {
                "event": "shrunk",
                "iteration": iteration,
                "scenario_id": counterexample.scenario.scenario_id,
                "scenario": counterexample.scenario.describe(),
                "size_before": counterexample.original_size,
                "size_after": counterexample.scenario.size(),
                "shrink_runs": counterexample.shrink_runs,
                "oracles": sorted({v.oracle for v in counterexample.violations}),
            }
        )
    report.seal()
    emit(json.loads(report.summary_line()))
    return report


def _minimise(
    scenario: FuzzScenario,
    violations: List[Violation],
    iteration: int,
    sub_seed: int,
    inject_bug: Optional[str],
    shrink_budget: int,
) -> Counterexample:
    target_oracles = {v.oracle for v in violations}

    def run_fn(candidate: FuzzScenario) -> List[Violation]:
        observations = run_scenario(candidate, inject_bug=inject_bug)
        return check_all(candidate, observations)

    shrunk, shrunk_violations, runs = shrink(
        scenario, run_fn, target_oracles, budget=shrink_budget
    )
    return Counterexample(
        iteration=iteration,
        sub_seed=sub_seed,
        scenario=shrunk,
        violations=shrunk_violations or violations,
        shrink_runs=runs,
        original_size=scenario.size(),
    )


__all__ = [
    "Counterexample",
    "FuzzReport",
    "fuzz",
    "generate_scenario",
    "observation_digest",
]
