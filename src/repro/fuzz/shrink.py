"""Greedy scenario minimisation: keep only what the failure needs.

A raw counterexample from the generator drags along zones, clients,
faults, and config knobs that have nothing to do with the violation.
The shrinker repeatedly applies structural reductions -- drop the
adversary, drop a fault, drop a leaf zone (with its pinned clients),
drop a client, halve duration/rates, zero out knobs -- re-runs the
scenario, and keeps a reduction iff one of the *original* oracles still
fires.  First accepted reduction restarts the pass (classic greedy
delta debugging); the loop ends at a fixpoint or when the run budget is
spent.

Everything is deterministic: candidates are generated in a fixed order
from the scenario's own structure, and scenario copies go through the
JSON codec (the same path a checked-in counterexample takes), so a
shrunk scenario is born serializable.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Sequence, Set, Tuple

from repro.dnscore.name import as_name

from repro.fuzz.oracles import Violation
from repro.fuzz.scenario import FuzzScenario

#: scenario runs the shrinker may spend by default
DEFAULT_BUDGET = 150

RunFn = Callable[[FuzzScenario], List[Violation]]


def shrink(
    scenario: FuzzScenario,
    run_fn: RunFn,
    target_oracles: Set[str],
    budget: int = DEFAULT_BUDGET,
) -> Tuple[FuzzScenario, List[Violation], int]:
    """Minimise ``scenario`` while ``target_oracles`` keep firing.

    Returns ``(shrunk, violations_of_shrunk, runs_spent)``; when no
    reduction holds the failure, the original scenario comes back
    unchanged with zero-cost provenance (the caller already has its
    violations).
    """
    current = scenario
    current_violations: List[Violation] = []
    attempts = 0
    improved = True
    while improved and attempts < budget:
        improved = False
        for candidate in _candidates(current):
            if attempts >= budget:
                break
            attempts += 1
            violations = run_fn(candidate)
            if any(v.oracle in target_oracles for v in violations):
                current = candidate
                current_violations = violations
                improved = True
                break
    if not current_violations:
        current_violations = run_fn(current) if current is not scenario else []
    return current, current_violations, attempts


def _copy(scenario: FuzzScenario) -> FuzzScenario:
    """A deep, serialization-faithful copy (the round-trip IS the copy:
    anything that survives it will also survive a corpus check-in)."""
    return FuzzScenario.from_dict(scenario.to_dict())


def _droppable_zone_indices(scenario: FuzzScenario) -> List[int]:
    """Zones no other spec'd zone delegates through (leaf cuts)."""
    parents = {
        str(as_name(spec.origin).parent()) for spec in scenario.zones
    }
    return [
        index
        for index, spec in enumerate(scenario.zones)
        if spec.origin not in parents
    ]


def _without_zone(scenario: FuzzScenario, index: int) -> FuzzScenario:
    candidate = _copy(scenario)
    dropped = candidate.zones.pop(index).origin
    candidate.clients = [c for c in candidate.clients if c.zone != dropped]
    if candidate.adversary.zone == dropped:
        candidate.adversary.strategy = "none"
        candidate.adversary.zone = ""
    return candidate


def _candidates(scenario: FuzzScenario) -> Iterator[FuzzScenario]:
    """Reductions in decreasing structural impact, fixed order."""
    # 1. whole-component drops
    if scenario.adversary.strategy != "none":
        candidate = _copy(scenario)
        candidate.adversary.strategy = "none"
        candidate.adversary.zone = ""
        yield candidate
    for index in range(len(scenario.faults)):
        candidate = _copy(scenario)
        candidate.faults.pop(index)
        yield candidate
    if len(scenario.zones) > 1:
        for index in _droppable_zone_indices(scenario):
            yield _without_zone(scenario, index)
    if len(scenario.clients) > 1:
        for index in range(len(scenario.clients)):
            candidate = _copy(scenario)
            candidate.clients.pop(index)
            yield candidate

    # 2. temporal reductions
    if scenario.duration > 3.0:
        candidate = _copy(scenario)
        candidate.duration = max(3.0, scenario.duration / 2.0)
        yield candidate

    # 3. intensity reductions
    for index, spec in enumerate(scenario.clients):
        if spec.rate > 2.0:
            candidate = _copy(scenario)
            candidate.clients[index].rate = max(2.0, spec.rate / 2.0)
            yield candidate
        if spec.pool_size > 1:
            candidate = _copy(scenario)
            candidate.clients[index].pool_size = 1
            yield candidate
    if scenario.adversary.strategy != "none" and scenario.adversary.rate > 2.0:
        candidate = _copy(scenario)
        candidate.adversary.rate = max(2.0, scenario.adversary.rate / 2.0)
        yield candidate

    # 4. zone-content reductions
    for index, spec in enumerate(scenario.zones):
        for attr, floor in (("leaf_names", 1), ("chain_len", 0)):
            if getattr(spec, attr) > floor:
                candidate = _copy(scenario)
                setattr(candidate.zones[index], attr, floor)
                yield candidate
        for flag in ("wildcard", "glueless"):
            if getattr(spec, flag):
                candidate = _copy(scenario)
                setattr(candidate.zones[index], flag, False)
                yield candidate

    # 5. config reductions towards the defaults
    yield from _config_reductions(scenario)


def _config_reductions(scenario: FuzzScenario) -> Iterator[FuzzScenario]:
    rk = scenario.resolver
    knob_resets: Sequence[Tuple[str, object, object]] = (
        ("serve_stale_window", rk.serve_stale_window, 0.0),
        ("overload", rk.overload, False),
        ("qname_minimization", rk.qname_minimization, False),
        ("health_mode", rk.health_mode, "legacy"),
    )
    for attr, value, default in knob_resets:
        if value != default:
            candidate = _copy(scenario)
            setattr(candidate.resolver, attr, default)
            yield candidate
    if scenario.dcc.enabled:
        candidate = _copy(scenario)
        candidate.dcc.enabled = False
        yield candidate
    if scenario.client_attempts > 1:
        candidate = _copy(scenario)
        candidate.client_attempts = 1
        yield candidate
