"""Random scenario generation from a seeded PRNG (no hypothesis dep).

Every draw comes from one injected ``random.Random``, so a scenario is
a pure function of its seed: ``generate_scenario(Random(s))`` yields
the same :class:`~repro.fuzz.scenario.FuzzScenario` on every machine,
which is what makes the engine's verdict log and digest reproducible.

The distributions are tuned for *coverage per second of wall clock*:
scenarios stay small (a few virtual seconds, tens-of-QPS clients) but
cross the axes that historically interact -- adversary strategy x
glueless delegations x fault schedules x health/overload/serve-stale
config -- because composed-regime bugs are what the figure scenarios
miss (cf. Rizvi et al.'s layered-defense evaluation in PAPERS.md).
"""

from __future__ import annotations

import random
from typing import List

from repro.netsim.faults import FaultSpec, LinkDegradation, NodeOutage, Partition
from repro.util.seeds import derive_seed as _derive_seed
from repro.workloads.zonegen import graph_server_addr, random_zone_specs

from repro.fuzz.scenario import (
    AdversarySpec,
    BenignClientSpec,
    DccKnobs,
    FuzzScenario,
    ResolverKnobs,
)

#: the fuzz topology's fixed resolver address (clients aim here)
RESOLVER_ADDR = "10.0.41.1"


def generate_scenario(rng: random.Random, seed: int = 0) -> FuzzScenario:
    """Draw one scenario; ``seed`` is recorded for provenance only."""
    duration = rng.choice((6.0, 8.0, 10.0))
    zones = random_zone_specs(rng, max_zones=3, max_depth=2)
    zone_origins = [spec.origin for spec in zones]

    clients: List[BenignClientSpec] = []
    for i in range(rng.randint(1, 3)):
        zone = rng.choice(zone_origins)
        clients.append(
            BenignClientSpec(
                name=f"benign{i}",
                zone=zone,
                rate=rng.choice((10.0, 20.0, 40.0)),
                start=0.0,
                stop=duration,
                pool_size=rng.randint(2, 6),
            )
        )

    adversary = _draw_adversary(rng, zone_origins, duration)
    resolver = ResolverKnobs(
        health_mode=rng.choice(("legacy", "adaptive")),
        serve_stale_window=rng.choice((0.0, 0.0, 10.0, 30.0)),
        overload=rng.random() < 0.4,
        high_watermark=rng.choice((64, 128)),
        low_watermark=32,
        qname_minimization=rng.random() < 0.3,
        failure_threshold=rng.choice((3, 5)),
    )
    dcc = DccKnobs(
        enabled=rng.random() < 0.6,
        signaling=rng.random() < 0.7,
        channel_capacity=rng.choice((150.0, 300.0)),
    )
    faults = _draw_faults(rng, zones_count=len(zones), duration=duration)

    return FuzzScenario(
        seed=seed,
        duration=duration,
        zones=zones,
        clients=clients,
        adversary=adversary,
        faults=faults,
        resolver=resolver,
        dcc=dcc,
        client_timeout=1.5,
        client_attempts=rng.choice((1, 1, 2)),
    )


def _draw_adversary(
    rng: random.Random, zone_origins: List[str], duration: float
) -> AdversarySpec:
    strategy = rng.choice(("none", "nx", "nx", "wc", "wc", "chain", "ff"))
    if strategy == "none":
        return AdversarySpec(strategy="none")
    zone = rng.choice(zone_origins)
    rate = rng.choice((100.0, 200.0, 400.0))
    if strategy == "ff":
        # Amplification multiplies at the channel; keep the base rate low.
        rate = rng.choice((10.0, 20.0))
    return AdversarySpec(
        strategy=strategy,
        zone=zone,
        rate=rate,
        start=rng.choice((1.0, 2.0)),
        stop=duration,
        ff_fanout=rng.choice((3, 4)),
        ff_instances=rng.choice((8, 16)),
    )


def _draw_faults(
    rng: random.Random, zones_count: int, duration: float
) -> List[FaultSpec]:
    """A short schedule against the *authoritative* side only.

    The resolver is deliberately never crashed: its probes (stale,
    breaker transitions) live in process memory, and the oracles want
    one continuous observation of it.  Authoritative outages and lossy
    channels are exactly the regime the health layer exists for.
    """
    faults: List[FaultSpec] = []
    if rng.random() < 0.55:
        return faults
    victim = graph_server_addr(rng.randrange(max(1, zones_count)))
    kind = rng.random()
    # Every drawn fault keeps its nominal envelope inside
    # [1, duration - 3): at least a second of clean baseline before and,
    # after the settle allowance, a judgeable window after -- the
    # recovery oracle needs both to apply.
    start = rng.uniform(1.0, duration * 0.3)
    budget = duration - 3.0 - start
    if kind < 0.4:
        flaps = rng.choice((1, 1, 2))
        if flaps == 2:
            # the envelope ends at start + period + outage_duration, so
            # an explicit period keeps the whole flap grid in budget
            outage = round(rng.uniform(0.4, max(0.4, budget / 3.0)), 3)
            faults.append(
                NodeOutage(
                    address=victim,
                    at=round(start, 3),
                    duration=outage,
                    flaps=2,
                    period=round(2.0 * outage, 3),
                )
            )
        else:
            faults.append(
                NodeOutage(
                    address=victim,
                    at=round(start, 3),
                    duration=round(rng.uniform(0.5, max(0.5, budget)), 3),
                )
            )
    elif kind < 0.75:
        faults.append(
            LinkDegradation(
                src=RESOLVER_ADDR,
                dst=victim,
                start=round(start, 3),
                end=round(start + rng.uniform(1.0, max(1.0, budget)), 3),
                loss=round(rng.uniform(0.2, 0.9), 3),
                latency=round(rng.uniform(0.0, 0.05), 3),
                ramp=rng.choice((0.0, 0.5)),
            )
        )
    else:
        faults.append(
            Partition(
                a=RESOLVER_ADDR,
                b=victim,
                start=round(start, 3),
                end=round(start + rng.uniform(0.5, max(0.5, budget)), 3),
            )
        )
    return faults


def derive_seed(master_seed: int, iteration: int) -> int:
    """Stable per-iteration sub-seed (independent of Python's hash).

    Now a thin alias for :func:`repro.util.seeds.derive_seed`, which
    generalized this scheme for the fluid layer's promotion sub-seeds;
    bit-compatible with the original local implementation, so historic
    corpus files and verdict digests replay unchanged.
    """
    return _derive_seed(master_seed, iteration)


def scenario_for(master_seed: int, iteration: int) -> FuzzScenario:
    """The engine's draw: scenario #``iteration`` of stream ``master_seed``."""
    sub_seed = derive_seed(master_seed, iteration)
    return generate_scenario(random.Random(sub_seed), seed=sub_seed)
