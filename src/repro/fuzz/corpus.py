"""The shrunk regression corpus: counterexamples as checked-in JSON.

Every oracle violation the engine finds is minimised and written as one
self-describing JSON file.  ``tests/regressions/`` holds the curated
set; tier-1 replays each file on every run, so a once-found bug stays
found.

A corpus file records the *scenario* and the *historical* violations
(plus the bug injection that produced them, if any).  Replay runs the
scenario against the current code **without** re-injecting the bug:
a file whose defect has been fixed replays green, which is exactly the
regression-test contract.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from repro.fuzz.oracles import Violation, check_all
from repro.fuzz.runner import FuzzObservations, run_scenario
from repro.fuzz.scenario import FuzzScenario

FORMAT_VERSION = 1


def counterexample_record(
    scenario: FuzzScenario,
    violations: List[Violation],
    master_seed: int,
    iteration: int,
    injected_bug: Optional[str] = None,
    note: str = "",
) -> Dict:
    """The JSON-ready form of one minimised counterexample."""
    return {
        "format_version": FORMAT_VERSION,
        "scenario_id": scenario.scenario_id,
        "note": note,
        "found_by": {"master_seed": master_seed, "iteration": iteration},
        "injected_bug": injected_bug,
        "violations": [v.to_dict() for v in violations],
        "scenario": scenario.to_dict(),
    }


def save_counterexample(directory: str, record: Dict) -> str:
    """Write one record as ``ce-<scenario_id>.json``; returns the path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"ce-{record['scenario_id']}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_counterexample(path: str) -> Tuple[FuzzScenario, Dict]:
    with open(path, "r", encoding="utf-8") as fh:
        record = json.load(fh)
    version = record.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported counterexample format {version!r} "
            f"(this build reads {FORMAT_VERSION})"
        )
    scenario = FuzzScenario.from_dict(record["scenario"])
    return scenario, record


def replay(
    path: str, honor_injection: bool = False
) -> Tuple[FuzzScenario, FuzzObservations, List[Violation]]:
    """Re-run a corpus file against the current code.

    ``honor_injection=True`` re-enables the recorded bug injection --
    useful to demonstrate what the file originally caught; the default
    replays the fixed code path, where the file must come back clean.
    """
    scenario, record = load_counterexample(path)
    inject = record.get("injected_bug") if honor_injection else None
    observations = run_scenario(scenario, inject_bug=inject)
    return scenario, observations, check_all(scenario, observations)


def corpus_files(directory: str) -> List[str]:
    """All counterexample files in a corpus directory, sorted."""
    if not os.path.isdir(directory):
        return []
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.endswith(".json")
    )
