"""JSON-safe round-tripping for the repo's config dataclasses.

The fuzzer's whole value rests on counterexamples being *portable*: a
shrunk scenario must serialize to JSON, survive a check-in, and replay
bit-for-bit (ISSUE 6 satellite).  The configs involved -- fault specs,
:class:`~repro.experiments.common.ScenarioConfig`, resolver/health/
overload knobs -- are plain dataclasses plus enums, so one generic
codec covers them all:

- :func:`encode` maps dataclasses to dicts, enums to their values,
  containers recursively; anything else (callables, arbitrary objects)
  raises :class:`SerializationError` naming the offending field, so a
  scenario that silently cannot replay is impossible to emit;
- :func:`decode_dataclass` rebuilds instances from the dict using the
  class's own field annotations (``typing.get_type_hints``), restoring
  enums, nested dataclasses, and Optional/List/Dict/Tuple containers.

No schema files, no pickle: the JSON a counterexample carries is the
dataclass structure itself.
"""

from __future__ import annotations

import dataclasses
import enum
import typing
from typing import Any, Dict, List, Optional, Tuple, Type, TypeVar, Union

T = TypeVar("T")


class SerializationError(TypeError):
    """A value cannot be round-tripped through JSON."""


_PRIMITIVES = (bool, int, float, str)


def encode(value: Any, context: str = "value") -> Any:
    """JSON-safe form of ``value`` (primitives pass through)."""
    if value is None or isinstance(value, _PRIMITIVES):
        return value
    if isinstance(value, enum.Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return encode_dataclass(value, context=context)
    if isinstance(value, (list, tuple)):
        return [encode(item, f"{context}[{i}]") for i, item in enumerate(value)]
    if isinstance(value, (set, frozenset)):
        # Canonical order so equal schedules encode to equal JSON.
        return sorted(encode(item, context) for item in value)
    if isinstance(value, dict):
        encoded: Dict[str, Any] = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise SerializationError(
                    f"{context}: dict key {key!r} is not a string"
                )
            encoded[key] = encode(item, f"{context}[{key!r}]")
        return encoded
    raise SerializationError(
        f"{context}: {type(value).__name__} is not JSON-serializable "
        "(callables and ad-hoc objects cannot ride in a counterexample)"
    )


def encode_dataclass(obj: Any, context: str = "") -> Dict[str, Any]:
    prefix = context or type(obj).__name__
    result: Dict[str, Any] = {}
    for field in dataclasses.fields(obj):
        result[field.name] = encode(getattr(obj, field.name), f"{prefix}.{field.name}")
    return result


def decode_dataclass(cls: Type[T], data: Dict[str, Any]) -> T:
    """Rebuild a ``cls`` instance from :func:`encode_dataclass` output.

    Unknown keys raise (a corrupt or stale counterexample should fail
    loudly, not half-apply); missing keys fall back to the dataclass
    defaults, so old corpus files survive additive config growth.
    """
    hints = typing.get_type_hints(cls)
    known = {field.name for field in dataclasses.fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise SerializationError(
            f"{cls.__name__}: unknown fields {sorted(unknown)} in serialized form"
        )
    kwargs = {
        name: _decode_value(hints[name], value, f"{cls.__name__}.{name}")
        for name, value in data.items()
    }
    return cls(**kwargs)


def _decode_value(hint: Any, value: Any, context: str) -> Any:
    if value is None:
        return None
    origin = typing.get_origin(hint)
    if origin is Union:
        arms = [arm for arm in typing.get_args(hint) if arm is not type(None)]
        if len(arms) == 1:
            return _decode_value(arms[0], value, context)
        for arm in arms:  # first arm that decodes wins (rare in practice)
            try:
                return _decode_value(arm, value, context)
            except (SerializationError, TypeError, ValueError, KeyError):
                continue
        raise SerializationError(f"{context}: no Union arm of {hint} accepts {value!r}")
    if origin in (list, List):
        (item_hint,) = typing.get_args(hint) or (Any,)
        return [_decode_value(item_hint, item, context) for item in value]
    if origin in (tuple, Tuple):
        args = typing.get_args(hint)
        if len(args) == 2 and args[1] is Ellipsis:
            return tuple(_decode_value(args[0], item, context) for item in value)
        if args:
            return tuple(
                _decode_value(arg, item, context) for arg, item in zip(args, value)
            )
        return tuple(value)
    if origin in (dict, Dict):
        args = typing.get_args(hint)
        value_hint = args[1] if len(args) == 2 else Any
        return {key: _decode_value(value_hint, item, context) for key, item in value.items()}
    if isinstance(hint, type):
        if issubclass(hint, enum.Enum):
            return hint(value)
        if dataclasses.is_dataclass(hint):
            if not isinstance(value, dict):
                raise SerializationError(
                    f"{context}: expected a dict for {hint.__name__}, got {value!r}"
                )
            return decode_dataclass(hint, value)
        if hint is float and isinstance(value, int):
            return float(value)
    return value


def require_serializable(obj: Any, forbidden: Dict[str, Optional[Any]]) -> None:
    """Raise when any named field is set (callable/ad-hoc config).

    ``forbidden`` maps field names to their current values; fields that
    are ``None`` are fine (unset), anything else cannot ride in JSON.
    """
    offenders = [name for name, value in forbidden.items() if value is not None]
    if offenders:
        raise SerializationError(
            f"{type(obj).__name__} fields {offenders} hold callables or ad-hoc "
            "objects and cannot be serialized; clear them before to_dict()"
        )
