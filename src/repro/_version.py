"""The package version, in a leaf module.

Lives below every layer so that low-level code (provenance headers,
exporters) can stamp artifacts without importing the :mod:`repro`
facade -- which sits at the *top* of the layering contract because it
re-exports the server/dcc/netsim entry points (see the R6 section of
``docs/STATIC_ANALYSIS.md``).
"""

__version__ = "1.0.0"
