"""Command-line entry point: ``python -m repro <command>``.

Dispatches to the experiment drivers so the whole evaluation can be
regenerated without writing Python:

    python -m repro fig2 --scale 0.1
    python -m repro fig4 --scale 0.15
    python -m repro fig8 --scale 0.25
    python -m repro fig9 --scale 0.25
    python -m repro fig10 --quick
    python -m repro fig11 --quick
    python -m repro table1
    python -m repro chaos --backend sim   # fault-schedule replay + recovery SLOs
    python -m repro chaos --backend live --slo  # same schedule over real sockets
    python -m repro chaos-matrix --scale 0.25   # sim-only DCC on/off comparison
    python -m repro resilience --scale 0.25  # vanilla vs hardened resolver
    python -m repro selfcheck            # determinism proof (SimSan on)
    python -m repro obs --scale 0.15     # observed run, exports traces
    python -m repro fuzz --seed 42 --iterations 25  # scenario fuzzing
    python -m repro lint                 # reprolint over src/ tests/ tools/
    python -m repro live --duration 2 --seed 1  # real-socket smoke (UDP backend)
    python -m repro bench                # perf baseline BENCH_<shortrev>.json
    python -m repro scale --clients 1000000  # hybrid fluid/packet core
    python -m repro all --scale 0.1      # everything, quick settings
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures "
        "(DNS Congestion Control in Adversarial Settings, SOSP 2024).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig2 = sub.add_parser("fig2", help="rate limits of 45 open resolvers")
    fig2.add_argument("--scale", type=float, default=0.1,
                      help="probe rate/duration scale (1.0 = paper rates)")
    fig2.add_argument("--resolvers", type=int, default=None,
                      help="limit the population (default: all 45)")

    fig4 = sub.add_parser("fig4", help="attack validation sweeps (setups a-d)")
    fig4.add_argument("--scale", type=float, default=0.15,
                      help="timeline compression (1.0 = 50-second runs)")
    fig4.add_argument("--quick", action="store_true", help="thin the sweeps")

    fig8 = sub.add_parser("fig8", help="DCC vs vanilla (Table 2 scenarios)")
    fig8.add_argument("--scale", type=float, default=0.25)
    fig8.add_argument("--seed", type=int, default=42)

    fig9 = sub.add_parser("fig9", help="signaling on/off on a forwarder chain")
    fig9.add_argument("--scale", type=float, default=0.25)
    fig9.add_argument("--seed", type=int, default=42)

    fig10 = sub.add_parser("fig10", help="overhead vs tracked entities")
    fig10.add_argument("--quick", action="store_true")
    fig10.add_argument("--ops", type=int, default=50_000)
    fig10.add_argument("--seed", type=int, default=11)

    fig11 = sub.add_parser("fig11", help="added processing delay CDFs")
    fig11.add_argument("--quick", action="store_true")

    sub.add_parser("table1", help="DCC state vs resolver state")
    ablations = sub.add_parser(
        "ablations", help="design-choice ablations (schedulers, depth)"
    )
    ablations.add_argument("--seed", type=int, default=1)

    selfcheck = sub.add_parser(
        "selfcheck",
        help="prove determinism: run a DCC scenario twice under the "
        "SimSan sanitizer and diff event-trace hashes",
    )
    selfcheck.add_argument("--seed", type=int, default=42)
    selfcheck.add_argument("--scale", type=float, default=0.05,
                           help="timeline compression (1.0 = 60-second runs)")
    selfcheck.add_argument("--runs", type=int, default=2)
    selfcheck.add_argument("--out", type=str, default=None,
                           help="also write the report to this file")

    obs = sub.add_parser(
        "obs",
        help="run one observed fig4-style scenario and export "
        "metrics.jsonl + a Perfetto-loadable Chrome trace",
    )
    obs.add_argument("--scale", type=float, default=0.15,
                     help="timeline compression (1.0 = 50-second runs)")
    obs.add_argument("--seed", type=int, default=42)
    obs.add_argument("--out-dir", type=str, default="results/obs",
                     help="directory for metrics.jsonl and trace.json")
    obs.add_argument("--top", type=int, default=10,
                     help="heavy-hitter table depth")

    chaos_matrix = sub.add_parser(
        "chaos-matrix",
        help="sim-only resilience comparison under infrastructure faults "
        "(DCC on/off); `repro chaos` replays schedules on either backend",
    )
    chaos_matrix.add_argument("--scale", type=float, default=0.25)
    chaos_matrix.add_argument("--seed", type=int, default=42)
    chaos_matrix.add_argument("--out", type=str, default=None,
                              help="also write the report to this file")

    resilience = sub.add_parser(
        "resilience",
        help="resilience matrix: vanilla vs hardened resolver under a "
        "total authoritative outage + NX flood",
    )
    resilience.add_argument("--scale", type=float, default=0.25)
    resilience.add_argument("--seed", type=int, default=42)
    resilience.add_argument("--out", type=str, default=None,
                            help="also write the report to this file")

    fuzz = sub.add_parser(
        "fuzz",
        help="property-based scenario fuzzing with invariant oracles "
        "(deterministic: same seed -> same verdict log and digest)",
    )
    fuzz.add_argument("--seed", type=int, default=42, help="master seed")
    fuzz.add_argument("--iterations", type=int, default=25,
                      help="scenario draws to run")
    fuzz.add_argument("--time-budget", type=float, default=None,
                      help="stop after this many wall-clock seconds "
                      "(may end before --iterations)")
    fuzz.add_argument("--log", type=str, default=None,
                      help="write the JSONL verdict log to this file")
    fuzz.add_argument("--corpus-dir", type=str, default="results/fuzz-corpus",
                      help="directory for shrunk counterexamples "
                      "(curate into tests/regressions/ by hand)")
    fuzz.add_argument("--shrink-budget", type=int, default=150,
                      help="max scenario re-runs per minimisation")
    fuzz.add_argument("--inject-bug", type=str, default=None,
                      choices=["dangling-glueless"],
                      help="re-introduce a known-fixed defect "
                      "(fuzzer self-test / corpus regeneration)")
    fuzz.add_argument("--replay", type=str, default=None, metavar="FILE",
                      help="re-run one counterexample file and exit")
    fuzz.add_argument("--replay-with-bug", action="store_true",
                      help="honor the file's recorded bug injection on replay")
    fuzz.add_argument("--quiet", action="store_true",
                      help="suppress the live verdict-log tail")

    live = sub.add_parser(
        "live",
        help="benign+NX-flood smoke over real asyncio UDP sockets "
        "(transport backend + chaos proxy); writes results/live_smoke.txt",
    )
    live.add_argument(
        "live_args", nargs=argparse.REMAINDER, metavar="ARGS",
        help="flags forwarded to repro.experiments.live_smoke "
        "(--duration, --seed, --loss, --min-goodput, --check-against, ...)",
    )

    bench = sub.add_parser(
        "bench",
        help="time MOPI-FQ, the event loop, and fig10-quick; "
        "writes BENCH_<shortrev>.json (perf baseline trajectory)",
    )
    bench.add_argument(
        "bench_args", nargs=argparse.REMAINDER, metavar="ARGS",
        help="flags forwarded to repro.experiments.bench (--ops, --events, --out-dir)",
    )

    scale = sub.add_parser(
        "scale",
        help="million-client hybrid fluid/packet scenario with double-run "
        "digests per mode and a hybrid-vs-packet verdict gate",
    )
    scale.add_argument(
        "scale_args", nargs=argparse.REMAINDER, metavar="ARGS",
        help="flags forwarded to repro.experiments.scale "
        "(--clients, --mode, --runs, --duration, --seed, --out)",
    )

    lint = sub.add_parser(
        "lint",
        help="run the reprolint static analyzer (rules R1-R9); defaults "
        "to src/ tests/ tools/ against the checked-in ratchet",
    )
    lint.add_argument(
        "lint_args", nargs=argparse.REMAINDER, metavar="ARGS",
        help="paths and flags forwarded to tools.reprolint "
        "(see python -m tools.reprolint --help)",
    )

    everything = sub.add_parser("all", help="run every experiment (quick settings)")
    everything.add_argument("--scale", type=float, default=0.1)
    return parser


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import time

    from repro.fuzz import corpus as fuzz_corpus
    from repro.fuzz.engine import fuzz as run_fuzz

    if args.replay is not None:
        scenario, _, violations = fuzz_corpus.replay(
            args.replay, honor_injection=args.replay_with_bug
        )
        print(f"replayed {scenario.scenario_id}: {scenario.describe()}")
        if violations:
            for violation in violations:
                print(f"  VIOLATION [{violation.oracle}] {violation.detail}")
            return 1
        print("  ok: all oracles pass")
        return 0

    def on_line(line: str) -> None:
        if not args.quiet:
            print(line)

    report = run_fuzz(
        master_seed=args.seed,
        iterations=args.iterations,
        inject_bug=args.inject_bug,
        shrink_budget=args.shrink_budget,
        corpus_dir=args.corpus_dir,
        clock=time.monotonic if args.time_budget is not None else None,
        time_budget=args.time_budget,
        on_line=on_line,
    )
    if args.log:
        with open(args.log, "w", encoding="utf-8") as fh:
            fh.write("\n".join(report.log_lines) + "\n")
    print(
        f"fuzz: {report.iterations_run} iteration(s), "
        f"{len(report.counterexamples)} counterexample(s), "
        f"stopped by {report.stopped_by}, digest {report.digest}"
    )
    for ce in report.counterexamples:
        oracles = ",".join(sorted({v.oracle for v in ce.violations}))
        where = ce.path or ce.scenario.scenario_id
        print(f"  {where}: [{oracles}] size {ce.original_size} -> {ce.scenario.size()}")
    return 0 if report.ok else 1


def _cmd_lint(lint_args: List[str]) -> int:
    """Shell into tools.reprolint from the installed-package entry point.

    The linter lives in ``tools/`` (it lints the repo, it is not part of
    the library), so this resolves the repo root relative to the
    ``repro`` package and fails loudly outside a source checkout.
    """
    import os

    import repro

    repo_root = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(repro.__file__))))
    if not os.path.isdir(os.path.join(repo_root, "tools", "reprolint")):
        print("repro lint: tools/reprolint not found; "
              "run from a source checkout", file=sys.stderr)
        return 2
    if repo_root not in sys.path:
        sys.path.insert(0, repo_root)
    from tools.reprolint.__main__ import main as lint_main

    argv = list(lint_args)
    if not argv:
        argv = ["--ratchet"]  # bare `repro lint` behaves like the CI gate
    if not any(not token.startswith("-") for token in argv):
        argv = [os.path.join(repo_root, p) for p in ("src", "tests", "tools")] + argv
    return lint_main(argv)


def main(argv: Optional[List[str]] = None) -> int:
    tokens = list(sys.argv[1:] if argv is None else argv)
    if tokens and tokens[0] == "lint":
        # forwarded verbatim: argparse's REMAINDER drops leading flags
        # (bpo-17050), so lint never goes through the parser
        return _cmd_lint(tokens[1:])
    if tokens and tokens[0] == "live":
        # same REMAINDER caveat: the smoke driver owns its own argparse
        from repro.experiments import live_smoke

        return live_smoke.main(tokens[1:])
    if tokens and tokens[0] == "bench":
        from repro.experiments import bench

        return bench.main(tokens[1:])
    if tokens and tokens[0] == "chaos":
        # fault-schedule replay on either backend; owns its own argparse
        # (same REMAINDER caveat as live/bench)
        from repro.experiments import chaos_unified

        return chaos_unified.main(tokens[1:])
    if tokens and tokens[0] == "scale":
        # hybrid fluid/packet million-client runs; owns its own argparse
        from repro.experiments import scale

        return scale.main(tokens[1:])
    args = _build_parser().parse_args(tokens)

    if args.command == "fig2":
        from repro.experiments import fig2_ratelimits

        fig2_ratelimits.main(scale=args.scale, resolver_count=args.resolvers)
    elif args.command == "fig4":
        from repro.experiments import fig4_attacks

        fig4_attacks.main(time_scale=args.scale, quick=args.quick)
    elif args.command == "fig8":
        from repro.experiments import fig8_resilience

        fig8_resilience.main(scale=args.scale, seed=args.seed)
    elif args.command == "fig9":
        from repro.experiments import fig9_signaling

        fig9_signaling.main(scale=args.scale, seed=args.seed)
    elif args.command == "fig10":
        from repro.experiments import fig10_overhead

        fig10_overhead.main(ops=args.ops, quick=args.quick, seed=args.seed)
    elif args.command == "fig11":
        from repro.experiments import fig11_delay

        fig11_delay.main(quick=args.quick)
    elif args.command == "table1":
        from repro.experiments import table1_state

        table1_state.main()
    elif args.command == "ablations":
        from repro.experiments import ablations

        ablations.main(seed=args.seed)
    elif args.command == "selfcheck":
        from repro.experiments import selfcheck

        return selfcheck.main(
            seed=args.seed, scale=args.scale, runs=args.runs, out=args.out
        )
    elif args.command == "obs":
        from repro.experiments import obs_demo

        return obs_demo.main(
            scale=args.scale, seed=args.seed, out_dir=args.out_dir, top=args.top
        )
    elif args.command == "chaos-matrix":
        from repro.experiments import chaos_resilience

        chaos_resilience.main(scale=args.scale, seed=args.seed, out=args.out)
    elif args.command == "resilience":
        from repro.experiments import resilience_matrix

        return resilience_matrix.main(scale=args.scale, seed=args.seed, out=args.out)
    elif args.command == "fuzz":
        return _cmd_fuzz(args)
    elif args.command == "lint":
        return _cmd_lint(args)
    elif args.command == "all":
        from repro.experiments import (
            chaos_resilience,
            fig2_ratelimits,
            fig4_attacks,
            fig8_resilience,
            fig9_signaling,
            fig10_overhead,
            fig11_delay,
            resilience_matrix,
            table1_state,
        )

        fig2_ratelimits.main(scale=args.scale, resolver_count=10)
        fig4_attacks.main(time_scale=args.scale, quick=True)
        fig8_resilience.main(scale=args.scale)
        fig9_signaling.main(scale=args.scale)
        fig10_overhead.main(quick=True)
        fig11_delay.main(quick=True)
        table1_state.main()
        chaos_resilience.main(scale=max(args.scale, 0.15))
        resilience_matrix.main(scale=max(args.scale, 0.1))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
