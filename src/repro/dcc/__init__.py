"""DCC: the DNS congestion-control framework (the paper's contribution).

Components, mirroring Figure 5:

- :mod:`repro.dcc.mopifq` -- the MOPI-FQ scheduler (Section 4 /
  Appendix B): multi-output pseudo-isolated fair queuing over a shared
  entry pool, O(|O| + q) space and O(log |O|) enqueue/dequeue;
- :mod:`repro.dcc.baselines` -- the Figure 7 design-space alternatives
  (input-centric FQ, leapfrog, IO-isolated, output-centric calendar FQ,
  plain FIFO) used as ablation baselines;
- :mod:`repro.dcc.monitor` -- per-client anomaly monitoring over sliding
  windows (Section 3.2.2);
- :mod:`repro.dcc.policing` -- pre-queue policing of convicted clients
  (Section 3.2.3);
- :mod:`repro.dcc.signaling` -- in-band anomaly/policing/congestion
  signals carried in EDNS options (Section 3.3);
- :mod:`repro.dcc.state` -- per-client / per-server / per-request state
  tables with inactivity purging (Table 1);
- :mod:`repro.dcc.shim` -- the non-invasive I/O shim that turns a vanilla
  resolver or forwarder into a DCC-enabled one.
"""

from repro.dcc.mopifq import (
    MopiFq,
    MopiFqConfig,
    EnqueueStatus,
    DequeuedMessage,
)
from repro.dcc.baselines import (
    FifoScheduler,
    InputCentricFq,
    LeapfrogInputFq,
    IoIsolatedFq,
    OutputCentricFq,
)
from repro.dcc.monitor import AnomalyMonitor, MonitorConfig, AnomalyKind, ClientVerdict
from repro.dcc.policing import PolicyEngine, Policy, PolicyKind
from repro.dcc.signaling import (
    AnomalySignal,
    PolicingSignal,
    CongestionSignal,
    CapacitySignal,
    Signal,
    extract_signals,
    attach_signal,
)
from repro.dcc.state import DccStateTables
from repro.dcc.shim import DccShim, DccConfig
from repro.dcc.shares import EqualShares, RateLimitPeggedShares, HistoryBasedShares
from repro.dcc.capacity import CapacityEstimator, CapacityConfig

__all__ = [
    "MopiFq",
    "MopiFqConfig",
    "EnqueueStatus",
    "DequeuedMessage",
    "FifoScheduler",
    "InputCentricFq",
    "LeapfrogInputFq",
    "IoIsolatedFq",
    "OutputCentricFq",
    "AnomalyMonitor",
    "MonitorConfig",
    "AnomalyKind",
    "ClientVerdict",
    "PolicyEngine",
    "Policy",
    "PolicyKind",
    "AnomalySignal",
    "PolicingSignal",
    "CongestionSignal",
    "CapacitySignal",
    "Signal",
    "extract_signals",
    "attach_signal",
    "DccStateTables",
    "DccShim",
    "DccConfig",
    "EqualShares",
    "RateLimitPeggedShares",
    "HistoryBasedShares",
    "CapacityEstimator",
    "CapacityConfig",
]
