"""The non-invasive DCC I/O shim (paper Figure 5).

``DccShim`` wraps a vanilla resolver (recursive or forwarder) without
touching its internals, exactly like the paper's prototype wraps BIND
via netfilter interception:

- **egress queries** are attributed to the responsible client (via the
  repurposed EDNS option), checked against pre-queue policies, and
  buffered in the MOPI-FQ scheduler; queries the scheduler refuses get
  an immediate synthesised SERVFAIL so the resolver does not waste a
  timeout (Section 3.2.1);
- a virtual-time **dequeue pump** plays the role of the prototype's
  dequeue thread, sending scheduled queries whenever their channel has
  capacity;
- **ingress answers** update the anomaly monitor and have DCC signals
  extracted (and acted upon) before the resolver sees them;
- **egress responses** to clients get anomaly / policing / congestion
  signals attached, preferring upstream-originated signals of the same
  type (Section 3.3.4).

The cache-hit fast path never reaches the shim: DCC only sees resolver
traffic for cache-missed requests, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.dcc.monitor import AnomalyEvent, AnomalyKind, AnomalyMonitor, ClientVerdict, MonitorConfig
from repro.dcc.mopifq import EnqueueStatus, MopiFq, MopiFqConfig
from repro.dcc.policing import (
    SIGNAL_TRIGGERED_TEMPLATE,
    PolicyEngine,
    PolicyKind,
    PolicyTemplate,
)
from repro.dcc.signaling import (
    AnomalySignal,
    CapacitySignal,
    CongestionSignal,
    PolicingSignal,
    attach_signal,
    extract_signals,
    signal_name,
)
from repro.dcc.state import DccStateTables, PerRequestState
from repro.dnscore.edns import ClientAttribution, OptionCode
from repro.dnscore.message import Message
from repro.dnscore.rdata import RCode
from repro.obs import NULL_OBS

#: attribution used for a resolver's own housekeeping queries (priming
#: etc.) that no client is responsible for
LOCAL_SOURCE = "__local__"


@dataclass
class DccConfig:
    """End-to-end configuration of a DCC instance."""

    scheduler: MopiFqConfig = field(default_factory=MopiFqConfig)
    monitor: MonitorConfig = field(default_factory=MonitorConfig)
    policy_templates: Optional[Dict[AnomalyKind, PolicyTemplate]] = None
    #: enable the in-band signaling mechanism (Figure 9 toggles this)
    signaling: bool = True
    #: start policing a suspect when a relayed countdown drops below this
    countdown_threshold: int = 5
    #: how much a relaying resolver lowers the countdown (F1 in Figure 6
    #: uses 5, F2 uses 0)
    countdown_decrement: int = 0
    #: entity state idle timeout (paper Section 5: 10 seconds)
    state_idle_timeout: float = 10.0
    #: advertise this host's per-client ingress limit via capacity
    #: signals (Section 3.2.1 footnote), letting DCC-enabled clients pin
    #: their channel buckets without probing; None disables
    advertise_ingress_limit: Optional[float] = None
    #: attach the capacity signal to every Nth response
    advertise_every: int = 50
    #: per-client share for MOPI-FQ (Section 3.2.1); default: equal
    share_of: Optional[Callable[[str], int]] = None
    #: alternative scheduler factory, for the Figure 7 ablations
    scheduler_factory: Optional[Callable[[], Any]] = None


@dataclass
class DccShimStats:
    queries_intercepted: int = 0
    queries_scheduled: int = 0
    queries_sent: int = 0
    queries_policed: int = 0
    queries_dropped_congestion: int = 0
    queries_evicted: int = 0
    servfails_synthesized: int = 0
    answers_seen: int = 0
    signals_received: int = 0
    signals_attached: int = 0
    signals_relayed: int = 0
    signal_triggered_policings: int = 0
    capacities_learned: int = 0
    capacities_advertised: int = 0
    host_crashes: int = 0


class DccShim:
    """Wraps one resolver/forwarder node with the full DCC control loop.

    ``resolver`` may be a :class:`~repro.server.resolver.RecursiveResolver`
    or a :class:`~repro.server.forwarder.Forwarder` -- anything exposing
    the hook surface (``egress_query_hook``, ``ingress_answer_hook``,
    ``egress_response_hook``), ``raw_send_query`` and ``deliver_answer``.
    """

    def __init__(self, resolver, config: Optional[DccConfig] = None) -> None:
        self.resolver = resolver
        self.config = config or DccConfig()
        self.scheduler = self._make_scheduler()
        self.monitor = AnomalyMonitor(self.config.monitor)
        self.engine = PolicyEngine(
            templates=self.config.policy_templates,
            on_expire=self.monitor.clear_conviction,
        )
        self.tables = DccStateTables()
        self.stats = DccShimStats()

        #: outgoing query id -> (client, client request id, server)
        self._inflight: Dict[int, Tuple[str, int, str]] = {}
        self._responses_sent = 0
        #: upstream capacities learned from capacity signals
        self.learned_capacities: Dict[str, float] = {}
        #: operator-configured capacities (the config file: survives crashes)
        self._configured_capacities: Dict[str, Tuple[float, Optional[float]]] = {}
        self._pump_event = None
        self._pump_at: Optional[float] = None
        self._ticking = False
        #: observability facade + this shim's track names
        self.obs = NULL_OBS
        host = getattr(resolver, "address", "?")
        self._obs_track = f"dcc:{host}"
        self._obs_fq_track = f"mopifq:{host}"
        #: queued query id -> open "mopifq.wait" span handle
        self._obs_wait: Dict[int, int] = {}

        resolver.egress_query_hook = self._on_egress_query
        resolver.ingress_answer_hook = self._on_ingress_answer
        resolver.egress_response_hook = self._on_egress_response
        # Overload shedding consults DCC's verdicts: a saturated host
        # sheds suspected/convicted clients before benign ones.
        if hasattr(resolver, "suspicion_probe"):
            resolver.suspicion_probe = self.shed_priority
        # DCC runs on the resolver host: it dies and restarts with it.
        # (Hosts without the Node lifecycle surface simply never crash.)
        if hasattr(resolver, "crash_hooks"):
            resolver.crash_hooks.append(self._on_host_crash)
            resolver.recover_hooks.append(self._on_host_recover)

    def _make_scheduler(self):
        if self.config.scheduler_factory is not None:
            return self.config.scheduler_factory()
        return MopiFq(self.config.scheduler, share_of=self.config.share_of)

    # ------------------------------------------------------------------
    # configuration passthrough
    # ------------------------------------------------------------------
    def set_channel_capacity(self, destination: str, rate: float, burst: Optional[float] = None) -> None:
        """Pin a channel's capacity: min(upstream ingress RL, own egress
        RL), obtained by probing / operator config / DCC signaling."""
        self._configured_capacities[destination] = (rate, burst)
        self.scheduler.set_channel_capacity(destination, rate, burst)

    # ------------------------------------------------------------------
    # host crash / recovery (graceful-degradation semantics)
    # ------------------------------------------------------------------
    def _on_host_crash(self) -> None:
        """Everything in Table 1 is process memory and dies with the
        host: queued queries, in-flight attribution, monitor verdicts and
        alarm counts, active policies, per-request tables, and capacities
        learned via signaling.  After a restart DCC must re-detect and
        re-convict an ongoing attacker from scratch."""
        self.stats.host_crashes += 1
        if self._pump_event is not None:
            self._pump_event.cancel()
            self._pump_event = None
            self._pump_at = None
        self._inflight.clear()
        self.learned_capacities.clear()
        if self.obs.enabled and self._obs_wait:
            for span in self._obs_wait.values():
                self.obs.end(span, self.now, outcome="crashed")
            self._obs_wait.clear()
        self.scheduler = self._make_scheduler()
        self.monitor = AnomalyMonitor(self.config.monitor)
        self.engine = PolicyEngine(
            templates=self.config.policy_templates,
            on_expire=self.monitor.clear_conviction,
        )
        self.tables = DccStateTables()
        if self.obs.enabled:
            # The rebuilt components must keep reporting to the same run.
            self.scheduler.obs = self.obs
            self.monitor.obs = self.obs
            self.monitor.obs_track = self._obs_track
            self.engine.obs = self.obs
            self.engine.obs_track = self._obs_track

    def _on_host_recover(self) -> None:
        """Operator-configured channel capacities come back from the
        config file; signaled/learned ones must be re-learned."""
        for destination, (rate, burst) in self._configured_capacities.items():
            self.scheduler.set_channel_capacity(destination, rate, burst)

    @property
    def now(self) -> float:
        return self.resolver.now

    def shed_priority(self, client: str) -> int:
        """Suspicion rank for the host's overload controller: clients
        the monitor holds in suspicion (1) or conviction (2) are shed
        first when the front end saturates; normal clients rank 0."""
        verdict = self.monitor.verdict(client)
        if verdict == ClientVerdict.CONVICTED:
            return 2
        if verdict == ClientVerdict.SUSPICIOUS:
            return 1
        return 0

    def _ensure_ticking(self) -> None:
        if self._ticking:
            return
        self._ticking = True
        self.resolver.sim.schedule(self.config.monitor.window, self._window_tick)
        self.resolver.sim.schedule(self.config.state_idle_timeout, self._purge_tick)

    # ------------------------------------------------------------------
    # egress queries: policing + scheduling
    # ------------------------------------------------------------------
    def _attribution(self, query: Message) -> ClientAttribution:
        option = query.find_edns(OptionCode.CLIENT_ATTRIBUTION)
        if option is None:
            return ClientAttribution(client=LOCAL_SOURCE, port=0, request_id=0)
        return ClientAttribution.decode(option)

    def _on_egress_query(self, query: Message, server: str) -> bool:
        self._ensure_ticking()
        now = self.now
        self.stats.queries_intercepted += 1
        attribution = self._attribution(query)
        client = attribution.client

        reqstate: Optional[PerRequestState] = None
        if client != LOCAL_SOURCE:
            known = self.tables.get_request(client, attribution.request_id)
            reqstate = self.tables.open_request(client, attribution.request_id, now)
            if known is None:
                # First query for this request: it entered resolution.
                self.monitor.record_request(client, now)
            reqstate.queries_attributed += 1
            self.monitor.record_query(client, now)
            # Per-request amplification detection: the moment one request
            # spawns more queries than the threshold, it is anomalous --
            # robust even when the client is a forwarder whose aggregate
            # traffic would dilute any ratio metric.
            if reqstate.queries_attributed == int(self.config.monitor.amplification_threshold) + 1:
                reqstate.anomaly = AnomalyKind.AMPLIFICATION
                self.monitor.record_anomalous_request(client, now)

            # Pre-queue policing (Section 3.2.3).
            if not self.engine.check(client, now):
                self.stats.queries_policed += 1
                reqstate.dropped_policing += 1
                if self.obs.enabled:
                    self.obs.inc("dcc.queries_policed")
                    self.obs.instant(
                        "police.refuse", self._obs_track, now, client=client
                    )
                self._synthesize_servfail(query, server)
                return True

        status, evicted = self.scheduler.enqueue(client, server, (query, server), now)
        if evicted is not None:
            self._handle_eviction(evicted, now)
        if status.ok:
            self.stats.queries_scheduled += 1
            if reqstate is not None:
                reqstate.queries_sent += 1
            if self.obs.enabled:
                self.obs.inc("dcc.queries_scheduled")
                span = self.obs.begin(
                    "mopifq.wait",
                    self._obs_fq_track,
                    now,
                    parent=self.obs.query_span(query.id),
                    client=client,
                    server=server,
                )
                if span:
                    self._obs_wait[query.id] = span
                self.obs.set_gauge(
                    "mopifq.depth", getattr(self.scheduler, "total_depth", 0)
                )
            self._pump()
        else:
            self.stats.queries_dropped_congestion += 1
            if reqstate is not None:
                reqstate.dropped_congestion += 1
                reqstate.allocated_rate = self._allocated_rate(client, server)
            if self.obs.enabled:
                self.obs.inc(f"dcc.enqueue_{status.name.lower()}")
                self.obs.instant(
                    "mopifq.reject",
                    self._obs_fq_track,
                    now,
                    client=client,
                    server=server,
                    status=status.name,
                )
            self._synthesize_servfail(query, server)
        return True

    def _allocated_rate(self, client: str, server: str) -> float:
        bucket = self.scheduler.channel_bucket(server)
        # Baseline schedulers (ablations) do not track per-channel
        # source sets; fall back to "sole user" for the advisory rate.
        queued_sources = getattr(self.scheduler, "queued_sources", None)
        active = max(1, len(queued_sources(server))) if queued_sources else 1
        share = 1
        if self.config.share_of is not None:
            share = max(1, int(self.config.share_of(client)))
        return bucket.rate * share / active

    def _handle_eviction(self, evicted, now: float) -> None:
        self.stats.queries_evicted += 1
        query, server = evicted.payload
        if self.obs.enabled:
            self.obs.inc("dcc.queries_evicted")
            span = self._obs_wait.pop(query.id, 0)
            self.obs.end(span, now, outcome="evicted")
        attribution = self._attribution(query)
        if attribution.client != LOCAL_SOURCE:
            state = self.tables.get_request(attribution.client, attribution.request_id)
            if state is not None:
                state.dropped_congestion += 1
                state.allocated_rate = self._allocated_rate(attribution.client, server)
        self._synthesize_servfail(query, server)

    def _synthesize_servfail(self, query: Message, server: str) -> None:
        """Fail the resolver's query immediately instead of letting it
        time out (Section 3.2.1)."""
        self.stats.servfails_synthesized += 1
        response = query.make_response(RCode.SERVFAIL)
        self.resolver.sim.call_soon(self.resolver.deliver_answer, response, server)

    # ------------------------------------------------------------------
    # the dequeue pump (the prototype's dequeue thread, event-driven)
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        now = self.now
        while True:
            item = self.scheduler.dequeue(now)
            if item is None:
                break
            query, server = item.payload
            if item.source != LOCAL_SOURCE:
                self._inflight[query.id] = (
                    item.source,
                    self._attribution(query).request_id,
                    server,
                )
            self.stats.queries_sent += 1
            if self.obs.enabled:
                span = self._obs_wait.pop(query.id, 0)
                self.obs.end(span, now, outcome="sent")
            self.resolver.raw_send_query(query, server)
        self._arm_pump()

    def _arm_pump(self) -> None:
        next_time = self.scheduler.next_ready_time(self.now)
        if next_time is None:
            return
        if self._pump_event is not None and self._pump_at is not None:
            if self._pump_at <= next_time:
                return  # an earlier (or equal) pump is already armed
            self._pump_event.cancel()
        self._pump_at = next_time
        self._pump_event = self.resolver.sim.schedule_at(next_time, self._pump_fire)

    def _pump_fire(self) -> None:
        self._pump_event = None
        self._pump_at = None
        self._pump()

    # ------------------------------------------------------------------
    # ingress answers: monitoring + signal processing
    # ------------------------------------------------------------------
    def _on_ingress_answer(self, answer: Message, src: str) -> Optional[Message]:
        now = self.now
        self.stats.answers_seen += 1
        info = self._inflight.pop(answer.id, None)
        client: Optional[str] = None
        request_id = 0
        if info is not None:
            client, request_id, _ = info
            self.monitor.record_answer(client, answer.rcode, now)

        signals = extract_signals(answer, strip=True)
        if signals:
            self.stats.signals_received += len(signals)
            for signal in signals:
                if self.obs.enabled:
                    self.obs.inc(f"dcc.signal_rx_{signal_name(signal)}")
                    self.obs.instant(
                        "signal.rx",
                        self._obs_track,
                        now,
                        kind=signal_name(signal),
                        src=src,
                    )
                if isinstance(signal, CapacitySignal):
                    self._learn_capacity(src, signal)
                else:
                    self._process_upstream_signal(signal, client, request_id, now)
        return answer

    def _learn_capacity(self, server: str, signal: CapacitySignal) -> None:
        """Pin the channel bucket at the upstream's advertised ingress
        limit (Section 3.2.1 footnote: signaled system parameters)."""
        if not self.config.signaling or signal.ingress_limit <= 0:
            return
        previous = self.learned_capacities.get(server)
        if previous == signal.ingress_limit:
            return
        self.learned_capacities[server] = signal.ingress_limit
        self.scheduler.set_channel_capacity(
            server, signal.ingress_limit, max(1.0, signal.ingress_limit * 0.1)
        )
        self.stats.capacities_learned += 1

    def _process_upstream_signal(
        self, signal, client: Optional[str], request_id: int, now: float
    ) -> None:
        if not self.config.signaling or client is None or client == LOCAL_SOURCE:
            return
        if isinstance(signal, AnomalySignal):
            countdown = max(0, signal.countdown - self.config.countdown_decrement)
            if signal.countdown <= self.config.countdown_threshold:
                # Imminent policing upstream: control the culprit now,
                # before the whole resolver gets policed (Section 3.3.1).
                self.engine.apply(client, SIGNAL_TRIGGERED_TEMPLATE, now, reason=signal.reason)
                self.stats.signal_triggered_policings += 1
            else:
                self._queue_relay(client, request_id, signal.with_countdown(countdown))
        elif isinstance(signal, PolicingSignal):
            # We are being policed upstream.  The signal arrives on every
            # failing request -- benign clients' included -- so it names
            # no culprit; per Section 3.3.2 it is propagated to our own
            # clients and monitoring sensitivity is raised (we failed to
            # identify the culprit in time), nothing more.
            self.monitor.raise_sensitivity(now)
            self._queue_relay(client, request_id, signal)
        elif isinstance(signal, CongestionSignal):
            self._queue_relay(client, request_id, signal)

    def _queue_relay(self, client: str, request_id: int, signal) -> None:
        state = self.tables.get_request(client, request_id)
        if state is not None:
            state.relay_signals.append(signal)
            self.stats.signals_relayed += 1

    # ------------------------------------------------------------------
    # egress responses: signal attachment
    # ------------------------------------------------------------------
    def _on_egress_response(self, response: Message, client: str) -> Message:
        now = self.now
        self._responses_sent += 1
        if (
            self.config.signaling
            and self.config.advertise_ingress_limit is not None
            and (self._responses_sent - 1) % max(1, self.config.advertise_every) == 0
        ):
            if attach_signal(
                response, CapacitySignal(self.config.advertise_ingress_limit)
            ):
                self.stats.capacities_advertised += 1
                self._note_attach("capacity", client, now)
        reqstate = self.tables.close_request(client, response.id)
        if reqstate is None or not self.config.signaling:
            return response

        # Upstream-originated signals first: they take precedence over
        # local ones of the same type (Section 3.3.4).
        for signal in reqstate.relay_signals:
            if attach_signal(response, signal, prefer_existing=True):
                self.stats.signals_attached += 1
                self._note_attach(f"relay_{signal_name(signal)}", client, now)

        if reqstate.dropped_policing > 0:
            policy = self.engine.policy_for(client, now)
            if policy is not None and attach_signal(
                response,
                PolicingSignal(policy.kind, policy.remaining(now), policy.reason),
            ):
                self.stats.signals_attached += 1
                self._note_attach("policing", client, now)

        # Anomaly signals go only on responses to *anomalous* requests
        # from a suspicious client (Section 3.3.1) -- never on a benign
        # sibling's response, or innocuous clients behind the same
        # forwarder would get policed downstream.
        if self.monitor.verdict(client) == ClientVerdict.SUSPICIOUS:
            kind = self.monitor.last_kind(client) or AnomalyKind.RATE
            request_is_anomalous = reqstate.anomaly is not None or (
                kind == AnomalyKind.NXDOMAIN and response.rcode == RCode.NXDOMAIN
            )
            if request_is_anomalous:
                if reqstate.anomaly is None:
                    reqstate.anomaly = kind
                signal_kind = reqstate.anomaly
                template = self.engine.templates.get(signal_kind)
                policy_kind = template.kind if template is not None else PolicyKind.RATE_LIMIT
                signal = AnomalySignal(
                    reason=signal_kind,
                    suspicion_period=self.config.monitor.suspicion_period,
                    policy=policy_kind,
                    countdown=self.monitor.countdown(client),
                )
                if attach_signal(response, signal):
                    self.stats.signals_attached += 1
                    self._note_attach("anomaly", client, now)

        if reqstate.dropped_congestion > 0:
            signal = CongestionSignal(
                dropped=reqstate.dropped_congestion,
                allocated_rate=reqstate.allocated_rate,
            )
            if attach_signal(response, signal):
                self.stats.signals_attached += 1
                self._note_attach("congestion", client, now)
        return response

    def _note_attach(self, kind: str, client: str, now: float) -> None:
        if self.obs.enabled:
            self.obs.inc(f"dcc.signal_tx_{kind}")
            self.obs.instant(
                "signal.attach", self._obs_track, now, kind=kind, client=client
            )

    # ------------------------------------------------------------------
    # periodic work
    # ------------------------------------------------------------------
    def _window_tick(self) -> None:
        now = self.now
        if getattr(self.resolver, "up", True):  # a crashed host evaluates nothing
            for event in self.monitor.evaluate(now):
                self._act_on_event(event, now)
        self.resolver.sim.schedule(self.config.monitor.window, self._window_tick)

    def _act_on_event(self, event: AnomalyEvent, now: float) -> None:
        if event.convicted:
            if self.obs.enabled:
                self.obs.inc("dcc.convictions")
                self.obs.instant(
                    "dcc.convict",
                    self._obs_track,
                    now,
                    client=event.client,
                    kind=event.kind.name,
                )
            self.engine.convict(event.client, event.kind, now)

    def _purge_tick(self) -> None:
        now = self.now
        timeout = self.config.state_idle_timeout
        if getattr(self.resolver, "up", True):
            self.monitor.purge(now, timeout)
            self.tables.purge(now)
            self.engine.sweep(now)
        self.resolver.sim.schedule(timeout, self._purge_tick)

    # ------------------------------------------------------------------
    # accounting (Table 1 / Figure 10)
    # ------------------------------------------------------------------
    def tracked_clients(self) -> int:
        return self.monitor.tracked_clients()

    def tracked_servers(self) -> int:
        if hasattr(self.scheduler, "active_outputs"):
            return self.scheduler.active_outputs()
        return 0

    def approx_state_bytes(self) -> int:
        queued = getattr(self.scheduler, "total_depth", 0)
        return self.tables.approx_bytes(
            tracked_clients=self.tracked_clients(),
            tracked_servers=self.tracked_servers(),
            queued_messages=queued,
        )
