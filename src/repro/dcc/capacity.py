"""Channel-capacity learning (paper Section 3.2.1, footnote 1).

A channel's capacity is min(upstream ingress limit, own egress limit).
The footnote lists three ways a DCC-enabled resolver can obtain the
upstream part: "sending regular probing queries, using system parameters
publicized by or negotiated between DNS operators, or leveraging DCC's
in-band signal mechanism".

:class:`CapacityEstimator` implements the probing/feedback option as an
AIMD controller over the observed channel behaviour:

- every answered query is a *delivery* observation;
- every timeout or upstream SERVFAIL attributable to the channel is a
  *loss* observation;
- when the loss ratio over a window exceeds ``loss_threshold``, the
  estimate is cut multiplicatively (we were probing above the upstream
  limit);
- after ``quiet_windows`` clean windows at the current estimate, the
  estimate grows additively to re-probe.

The estimate is clamped to ``[floor, ceiling]`` and can be pushed into a
:class:`~repro.dcc.mopifq.MopiFq` channel bucket via ``apply_to``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.util.sliding import SlidingWindowRatio


@dataclass
class CapacityConfig:
    initial: float = 1000.0
    floor: float = 10.0
    ceiling: float = 100_000.0
    window: float = 2.0
    #: loss ratio that triggers a multiplicative decrease
    loss_threshold: float = 0.05
    decrease_factor: float = 0.7
    #: additive increase per growth step (queries/second)
    increase_step: float = 25.0
    #: clean evaluation windows required before growing
    quiet_windows: int = 3
    #: ignore windows with fewer observations than this
    min_observations: int = 10


class _ChannelState:
    __slots__ = ("estimate", "losses", "clean_streak", "last_eval")

    def __init__(self, initial: float, window: float) -> None:
        self.estimate = initial
        self.losses = SlidingWindowRatio(window)
        self.clean_streak = 0
        self.last_eval = 0.0


class CapacityEstimator:
    """AIMD estimation of per-channel capacity from delivery feedback."""

    def __init__(self, config: Optional[CapacityConfig] = None) -> None:
        self.config = config or CapacityConfig()
        self._channels: Dict[str, _ChannelState] = {}
        self.decreases = 0
        self.increases = 0

    def _state(self, channel: str) -> _ChannelState:
        state = self._channels.get(channel)
        if state is None:
            state = _ChannelState(self.config.initial, self.config.window)
            self._channels[channel] = state
        return state

    # ------------------------------------------------------------------
    # observations
    # ------------------------------------------------------------------
    def record_delivery(self, channel: str, now: float) -> None:
        """A query on ``channel`` was answered."""
        self._state(channel).losses.record(now, hit=False)

    def record_loss(self, channel: str, now: float) -> None:
        """A query on ``channel`` timed out or bounced (over-limit)."""
        self._state(channel).losses.record(now, hit=True)

    # ------------------------------------------------------------------
    # control
    # ------------------------------------------------------------------
    def evaluate(self, now: float) -> Dict[str, float]:
        """Window tick: adjust estimates; returns channels that changed."""
        changed: Dict[str, float] = {}
        config = self.config
        for channel, state in self._channels.items():
            if now - state.last_eval < config.window:
                continue
            state.last_eval = now
            observations = state.losses.observations(now)
            if observations < config.min_observations:
                continue
            ratio = state.losses.ratio(now)
            if ratio > config.loss_threshold:
                state.estimate = max(config.floor, state.estimate * config.decrease_factor)
                state.clean_streak = 0
                self.decreases += 1
                changed[channel] = state.estimate
            else:
                state.clean_streak += 1
                if state.clean_streak >= config.quiet_windows:
                    state.clean_streak = 0
                    grown = min(config.ceiling, state.estimate + config.increase_step)
                    if grown != state.estimate:
                        state.estimate = grown
                        self.increases += 1
                        changed[channel] = state.estimate
        return changed

    def estimate(self, channel: str) -> float:
        return self._state(channel).estimate

    def seed(self, channel: str, capacity: float) -> None:
        """Start from an operator-published / signaled value."""
        self._state(channel).estimate = max(
            self.config.floor, min(self.config.ceiling, capacity)
        )

    def apply_to(self, scheduler, channel: str, burst_fraction: float = 0.1) -> None:
        """Push the current estimate into a scheduler's channel bucket."""
        rate = self.estimate(channel)
        scheduler.set_channel_capacity(channel, rate, max(1.0, rate * burst_fraction))

    def tracked_channels(self) -> int:
        return len(self._channels)
