"""In-band DCC signaling (paper Section 3.3).

Signals ride as EDNS options on ordinary DNS responses -- no extra
control messages, transparent to the wrapped resolver.  Three types, in
decreasing severity (the processing priority of Section 3.3.4):

- **Policing** (Section 3.3.2): "you have been policed"; carries the
  policy kind and expiry so a DCC-aware client can back off or switch
  resolvers, and so a downstream DCC raises its monitoring sensitivity.
- **Anomaly** (Section 3.3.1): "your request was anomalous"; carries the
  reason, the suspicion period, the policy that will be enforced, and a
  **countdown** of remaining alarms before conviction.  Downstream
  resolvers relay it towards the culprit (optionally lowering the
  countdown) and start policing the suspect themselves once the
  countdown falls below their threshold -- this is what confines the
  damage to the attacker in Figure 9.
- **Congestion** (Section 3.3.3): "queries were dropped by fair
  queuing"; informative only (the scheduler already enforces fairness),
  carrying the drop count and the client's current allocated rate.

Wire encoding is a compact fixed layout per type; decode tolerates and
ignores unknown payload tails for forward compatibility.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional, Union

from repro.dcc.monitor import AnomalyKind
from repro.dcc.policing import PolicyKind
from repro.dnscore.edns import EdnsOption, OptionCode
from repro.dnscore.errors import WireDecodeError
from repro.dnscore.message import Message


@dataclass(frozen=True)
class AnomalySignal:
    """Attached to responses for anomalous requests from a suspect."""

    reason: AnomalyKind
    suspicion_period: float
    policy: PolicyKind
    countdown: int

    CODE = OptionCode.DCC_ANOMALY
    SEVERITY = 2

    def encode(self) -> EdnsOption:
        payload = struct.pack(
            "!BfBH", int(self.reason), self.suspicion_period, int(self.policy), self.countdown
        )
        return EdnsOption(self.CODE, payload)

    @classmethod
    def decode(cls, option: EdnsOption) -> "AnomalySignal":
        if len(option.payload) < 8:
            raise WireDecodeError("anomaly signal payload too short")
        reason, period, policy, countdown = struct.unpack("!BfBH", option.payload[:8])
        return cls(AnomalyKind(reason), period, PolicyKind(policy), countdown)

    def with_countdown(self, countdown: int) -> "AnomalySignal":
        """Relay copy with a (typically lowered) countdown."""
        return AnomalySignal(self.reason, self.suspicion_period, self.policy, countdown)


@dataclass(frozen=True)
class PolicingSignal:
    """Attached to responses that failed because the client is policed."""

    policy: PolicyKind
    expires_in: float
    reason: Optional[AnomalyKind] = None

    CODE = OptionCode.DCC_POLICING
    SEVERITY = 3

    def encode(self) -> EdnsOption:
        reason = int(self.reason) if self.reason is not None else 0
        payload = struct.pack("!BfB", int(self.policy), self.expires_in, reason)
        return EdnsOption(self.CODE, payload)

    @classmethod
    def decode(cls, option: EdnsOption) -> "PolicingSignal":
        if len(option.payload) < 6:
            raise WireDecodeError("policing signal payload too short")
        policy, expires_in, reason = struct.unpack("!BfB", option.payload[:6])
        return cls(PolicyKind(policy), expires_in, AnomalyKind(reason) if reason else None)


@dataclass(frozen=True)
class CongestionSignal:
    """Attached when a request failed due to channel congestion."""

    dropped: int
    allocated_rate: float

    CODE = OptionCode.DCC_CONGESTION
    SEVERITY = 1

    def encode(self) -> EdnsOption:
        payload = struct.pack("!If", self.dropped, self.allocated_rate)
        return EdnsOption(self.CODE, payload)

    @classmethod
    def decode(cls, option: EdnsOption) -> "CongestionSignal":
        if len(option.payload) < 8:
            raise WireDecodeError("congestion signal payload too short")
        dropped, rate = struct.unpack("!If", option.payload[:8])
        return cls(dropped, rate)


@dataclass(frozen=True)
class CapacitySignal:
    """Advertises the sender's ingress rate limit to DCC-enabled clients.

    Implements the third capacity-learning option of Section 3.2.1's
    footnote ("leveraging DCC's in-band signal mechanism"): a DCC
    upstream occasionally attaches its admitted per-client ingress limit
    to responses, letting the downstream pin its channel bucket exactly
    at min(advertised limit, own egress limit) without probing.
    """

    ingress_limit: float

    CODE = OptionCode.DCC_CAPACITY
    SEVERITY = 0  # informational; processed after the control signals

    def encode(self) -> EdnsOption:
        return EdnsOption(self.CODE, struct.pack("!f", self.ingress_limit))

    @classmethod
    def decode(cls, option: EdnsOption) -> "CapacitySignal":
        if len(option.payload) < 4:
            raise WireDecodeError("capacity signal payload too short")
        (limit,) = struct.unpack("!f", option.payload[:4])
        return cls(limit)


Signal = Union[AnomalySignal, PolicingSignal, CongestionSignal, CapacitySignal]

_DECODERS = {
    int(OptionCode.DCC_ANOMALY): AnomalySignal.decode,
    int(OptionCode.DCC_POLICING): PolicingSignal.decode,
    int(OptionCode.DCC_CONGESTION): CongestionSignal.decode,
    int(OptionCode.DCC_CAPACITY): CapacitySignal.decode,
}

_SIGNAL_CODES = set(_DECODERS)


def extract_signals(message: Message, strip: bool = True) -> List[Signal]:
    """Decode every DCC signal on ``message``.

    With ``strip`` (the default), the signal options are removed so the
    wrapped resolver never sees them -- the transparency requirement of
    Section 3.3.
    """
    signals: List[Signal] = []
    remaining: List[EdnsOption] = []
    for option in message.edns_options:
        decoder = _DECODERS.get(option.code)
        if decoder is None:
            remaining.append(option)
            continue
        signals.append(decoder(option))
    if strip:
        message.edns_options = remaining
    signals.sort(key=lambda s: -s.SEVERITY)
    return signals


def attach_signal(message: Message, signal: Signal, prefer_existing: bool = True) -> bool:
    """Add ``signal`` to ``message``.

    One signal per type per response (Section 3.3.4).  With
    ``prefer_existing``, an already-attached signal of the same type wins
    -- that is the paper's rule that an upstream-originated signal has
    priority over a locally-generated one ("it has a bigger impact on
    the resolver as a whole").  Returns True if the signal was attached.
    """
    code = int(signal.CODE)
    for option in message.edns_options:
        if option.code == code:
            if prefer_existing:
                return False
            message.edns_options = [o for o in message.edns_options if o.code != code]
            break
    message.edns_options.append(signal.encode())
    return True


_SIGNAL_NAMES = {
    AnomalySignal: "anomaly",
    PolicingSignal: "policing",
    CongestionSignal: "congestion",
    CapacitySignal: "capacity",
}


def signal_name(signal: Signal) -> str:
    """Short lowercase label for a signal (observability annotations)."""
    return _SIGNAL_NAMES.get(type(signal), type(signal).__name__.lower())


def has_signal(message: Message, code: OptionCode) -> bool:
    return any(option.code == int(code) for option in message.edns_options)


def strip_all_signals(message: Message) -> None:
    message.edns_options = [
        option for option in message.edns_options if option.code not in _SIGNAL_CODES
    ]
