"""Baseline schedulers from the MO-FQ design space (paper Figure 7).

These exist to reproduce the paper's design-space arguments as runnable
ablations:

- :class:`FifoScheduler` -- no fairness at all (what a vanilla resolver
  effectively does: first query in, first query out);
- :class:`InputCentricFq` -- Nagle's textbook per-source FIFOs with
  round-robin service (Figure 7a top): suffers head-of-line blocking
  when a source's head message targets a congested channel;
- :class:`LeapfrogInputFq` -- the "plausible fix" that relaxes FIFO and
  leaps over blocked heads (Figure 7a bottom): still drops messages to
  healthy channels once a blocked queue fills up;
- :class:`IoIsolatedFq` -- separate per-(source, output) FIFOs
  (Figure 7b): fair, but O(|S|*|O|) state and inflated queuing delay;
- :class:`OutputCentricFq` -- per-output flattened calendar queues with
  round-robin across outputs (Figure 7c without the shared pool or the
  arrival-ordered output sequence).

All schedulers share MOPI-FQ's external interface so the DCC shim and
the benchmarks can swap them in: ``enqueue(source, destination, payload,
now)`` and ``dequeue(now)``, with per-channel token buckets capping each
output channel's rate.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.dcc.mopifq import DequeuedMessage, EnqueueStatus, EvictedMessage
from repro.util.tokenbucket import TokenBucket


class _ChannelMixin:
    """Shared per-destination token-bucket handling."""

    def __init__(self, default_rate: float) -> None:
        self._default_rate = default_rate
        self._rate_lim: Dict[str, TokenBucket] = {}

    def set_channel_capacity(self, destination: str, rate: float, burst: Optional[float] = None) -> None:
        self._rate_lim[destination] = TokenBucket(rate, burst)

    def channel_bucket(self, destination: str) -> TokenBucket:
        bucket = self._rate_lim.get(destination)
        if bucket is None:
            bucket = TokenBucket(self._default_rate)
            self._rate_lim[destination] = bucket
        return bucket


class FifoScheduler(_ChannelMixin):
    """One global FIFO; the null hypothesis of the design space."""

    def __init__(self, capacity: int = 100_000, default_rate: float = 1000.0) -> None:
        super().__init__(default_rate)
        self.capacity = capacity
        self._queue: Deque[Tuple[str, str, Any, float]] = deque()

    def enqueue(
        self, source: str, destination: str, payload: Any, now: float
    ) -> Tuple[EnqueueStatus, Optional[EvictedMessage]]:
        if len(self._queue) >= self.capacity:
            return EnqueueStatus.FAIL_QUEUE_OVERFLOW, None
        self._queue.append((source, destination, payload, now))
        return EnqueueStatus.SUCCESS, None

    def dequeue(self, now: float) -> Optional[DequeuedMessage]:
        # Strict FIFO: a congested head blocks everything behind it --
        # the global head-of-line pathology.
        if not self._queue:
            return None
        source, destination, payload, arr = self._queue[0]
        if not self.channel_bucket(destination).try_consume(now):
            return None
        self._queue.popleft()
        return DequeuedMessage(source, destination, payload, arr)

    def next_ready_time(self, now: float) -> Optional[float]:
        if not self._queue:
            return None
        destination = self._queue[0][1]
        return max(now, self.channel_bucket(destination).next_available(now))

    def total_queued(self) -> int:
        return len(self._queue)


class InputCentricFq(_ChannelMixin):
    """Nagle's FQ: per-source FIFOs, round-robin service (Figure 7a top).

    Fair in the single-output world it was designed for; in the
    multi-output setting a congested channel blocks the whole source
    queue, starving that source's traffic to *healthy* channels.
    """

    def __init__(self, per_source_depth: int = 100, default_rate: float = 1000.0) -> None:
        super().__init__(default_rate)
        self.per_source_depth = per_source_depth
        self._queues: "OrderedDict[str, Deque[Tuple[str, Any, float]]]" = OrderedDict()
        self._rr: List[str] = []
        self._rr_pos = 0

    def enqueue(
        self, source: str, destination: str, payload: Any, now: float
    ) -> Tuple[EnqueueStatus, Optional[EvictedMessage]]:
        queue = self._queues.get(source)
        if queue is None:
            queue = deque()
            self._queues[source] = queue
            self._rr.append(source)
        if len(queue) >= self.per_source_depth:
            # The defining failure mode: the drop happens regardless of
            # which channel the *new* message targets.
            return EnqueueStatus.FAIL_CHANNEL_CONGESTED, None
        queue.append((destination, payload, now))
        return EnqueueStatus.SUCCESS, None

    def dequeue(self, now: float) -> Optional[DequeuedMessage]:
        if not self._rr:
            return None
        n = len(self._rr)
        for offset in range(n):
            source = self._rr[(self._rr_pos + offset) % n]
            queue = self._queues.get(source)
            if not queue:
                continue
            destination, payload, arr = queue[0]  # head only: FIFO
            if self.channel_bucket(destination).try_consume(now):
                queue.popleft()
                self._rr_pos = (self._rr_pos + offset + 1) % n
                self._compact(source, queue)
                return DequeuedMessage(source, destination, payload, arr)
        return None

    def _compact(self, source: str, queue: Deque) -> None:
        if not queue:
            del self._queues[source]
            self._rr.remove(source)
            if self._rr:
                self._rr_pos %= len(self._rr)
            else:
                self._rr_pos = 0

    def next_ready_time(self, now: float) -> Optional[float]:
        times = [
            self.channel_bucket(queue[0][0]).next_available(now)
            for queue in self._queues.values()
            if queue
        ]
        return max(now, min(times)) if times else None

    def total_queued(self) -> int:
        return sum(len(queue) for queue in self._queues.values())


class LeapfrogInputFq(InputCentricFq):
    """Input-centric FQ that may leap over a blocked head (Figure 7a
    bottom).

    Fixes the service-side HOL blocking but not the drop-side unfairness:
    once a queue fills with messages to a congested channel, arrivals to
    healthy channels are still rejected.
    """

    def dequeue(self, now: float) -> Optional[DequeuedMessage]:
        if not self._rr:
            return None
        n = len(self._rr)
        for offset in range(n):
            source = self._rr[(self._rr_pos + offset) % n]
            queue = self._queues.get(source)
            if not queue:
                continue
            for index, (destination, payload, arr) in enumerate(queue):
                if self.channel_bucket(destination).try_consume(now):
                    del queue[index]
                    self._rr_pos = (self._rr_pos + offset + 1) % n
                    self._compact(source, queue)
                    return DequeuedMessage(source, destination, payload, arr)
        return None

    def next_ready_time(self, now: float) -> Optional[float]:
        times = [
            self.channel_bucket(destination).next_available(now)
            for queue in self._queues.values()
            for destination, _, _ in queue
        ]
        return max(now, min(times)) if times else None


class IoIsolatedFq(_ChannelMixin):
    """Separate per-(source, output) FIFOs (Figure 7b).

    Achieves the fairness goal -- no cross-channel interference -- at the
    cost the paper rejects: O(|S|*|O|) queues and the resource-exhaustion
    attack surface that comes with them.  Service order: round-robin over
    outputs, then round-robin over that output's sources.
    """

    def __init__(self, per_queue_depth: int = 100, default_rate: float = 1000.0) -> None:
        super().__init__(default_rate)
        self.per_queue_depth = per_queue_depth
        #: destination -> source -> FIFO
        self._queues: "OrderedDict[str, OrderedDict[str, Deque[Tuple[Any, float]]]]" = OrderedDict()
        self._out_rr: List[str] = []
        self._out_pos = 0
        self._src_pos: Dict[str, int] = {}

    def enqueue(
        self, source: str, destination: str, payload: Any, now: float
    ) -> Tuple[EnqueueStatus, Optional[EvictedMessage]]:
        per_dst = self._queues.get(destination)
        if per_dst is None:
            per_dst = OrderedDict()
            self._queues[destination] = per_dst
            self._out_rr.append(destination)
            self._src_pos[destination] = 0
        queue = per_dst.get(source)
        if queue is None:
            queue = deque()
            per_dst[source] = queue
        if len(queue) >= self.per_queue_depth:
            return EnqueueStatus.FAIL_CHANNEL_CONGESTED, None
        queue.append((payload, now))
        return EnqueueStatus.SUCCESS, None

    def dequeue(self, now: float) -> Optional[DequeuedMessage]:
        if not self._out_rr:
            return None
        n_out = len(self._out_rr)
        for out_offset in range(n_out):
            destination = self._out_rr[(self._out_pos + out_offset) % n_out]
            per_dst = self._queues.get(destination)
            if not per_dst:
                continue
            if not self.channel_bucket(destination).available(now):
                continue
            sources = list(per_dst.keys())
            pos = self._src_pos.get(destination, 0)
            for src_offset in range(len(sources)):
                source = sources[(pos + src_offset) % len(sources)]
                queue = per_dst[source]
                if not queue:
                    del per_dst[source]
                    continue
                if not self.channel_bucket(destination).try_consume(now):
                    break
                payload, arr = queue.popleft()
                if not queue:
                    del per_dst[source]
                self._src_pos[destination] = (pos + src_offset + 1) % max(1, len(sources))
                self._out_pos = (self._out_pos + out_offset + 1) % n_out
                return DequeuedMessage(source, destination, payload, arr)
        return None

    def next_ready_time(self, now: float) -> Optional[float]:
        times = [
            self.channel_bucket(destination).next_available(now)
            for destination, per_dst in self._queues.items()
            if any(per_dst.values())
        ]
        return max(now, min(times)) if times else None

    def total_queued(self) -> int:
        return sum(
            len(queue) for per_dst in self._queues.values() for queue in per_dst.values()
        )

    def queue_count(self) -> int:
        """Number of live (source, output) FIFOs -- the state blow-up."""
        return sum(len(per_dst) for per_dst in self._queues.values())


class OutputCentricFq(_ChannelMixin):
    """Per-output calendar queues served round-robin (Figure 7c without
    MOPI-FQ's shared pool and arrival-order output sequence).

    Fair per channel, but round-robin across outputs reorders messages
    with respect to arrival, inflating queuing delay -- the issue
    MOPI-FQ's ``out_seq`` removes.
    """

    def __init__(self, per_queue_depth: int = 100, max_round: int = 75, default_rate: float = 1000.0) -> None:
        super().__init__(default_rate)
        self.per_queue_depth = per_queue_depth
        self.max_round = max_round
        #: destination -> list of (source, payload, arr, round) kept sorted by round
        self._queues: "OrderedDict[str, List[Tuple[str, Any, float, int]]]" = OrderedDict()
        self._latest: Dict[str, Dict[str, int]] = {}
        self._current: Dict[str, int] = {}
        self._out_rr: List[str] = []
        self._out_pos = 0

    def enqueue(
        self, source: str, destination: str, payload: Any, now: float
    ) -> Tuple[EnqueueStatus, Optional[EvictedMessage]]:
        queue = self._queues.get(destination)
        if queue is None:
            queue = []
            self._queues[destination] = queue
            self._latest[destination] = {}
            self._current[destination] = 0
            self._out_rr.append(destination)
        current = self._current[destination]
        latest = self._latest[destination]
        round_no = max(latest.get(source, current - 1) + 1, current)
        if round_no >= current + self.max_round:
            return EnqueueStatus.FAIL_CLIENT_OVERSPEED, None
        if len(queue) >= self.per_queue_depth:
            return EnqueueStatus.FAIL_CHANNEL_CONGESTED, None
        # Insert at the end of its round (stable: scan from the back).
        index = len(queue)
        while index > 0 and queue[index - 1][3] > round_no:
            index -= 1
        queue.insert(index, (source, payload, now, round_no))
        latest[source] = round_no
        return EnqueueStatus.SUCCESS, None

    def dequeue(self, now: float) -> Optional[DequeuedMessage]:
        if not self._out_rr:
            return None
        n = len(self._out_rr)
        for offset in range(n):
            destination = self._out_rr[(self._out_pos + offset) % n]
            queue = self._queues.get(destination)
            if not queue:
                continue
            if not self.channel_bucket(destination).try_consume(now):
                continue
            source, payload, arr, round_no = queue.pop(0)
            self._out_pos = (self._out_pos + offset + 1) % n
            if queue:
                self._current[destination] = queue[0][3]
            else:
                self._current[destination] = round_no + 1
                self._latest[destination].clear()
            latest = self._latest[destination]
            if latest.get(source, -1) < self._current[destination] and not any(
                src == source for src, _, _, _ in queue
            ):
                latest.pop(source, None)
            return DequeuedMessage(source, destination, payload, arr)
        return None

    def next_ready_time(self, now: float) -> Optional[float]:
        times = [
            self.channel_bucket(destination).next_available(now)
            for destination, queue in self._queues.items()
            if queue
        ]
        return max(now, min(times)) if times else None

    def total_queued(self) -> int:
        return sum(len(queue) for queue in self._queues.values())
