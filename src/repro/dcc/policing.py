"""Pre-queue policing of convicted clients (paper Section 3.2.3).

Once the anomaly monitor convicts a client, a policy is activated and
enforced on every query *attributed* to that client **before** MOPI-FQ
queuing -- non-compliant queries never occupy queue space, which
preserves both fairness and performance for everyone else.  Cache-hit
requests are unaffected (the resolver's fast path never reaches DCC).

Policies used in the paper's evaluation (Section 5.1):

- NXDOMAIN anomalies -> rate limit to 100 QPS for 20 seconds;
- amplification anomalies -> block all queries for 30 seconds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro import sanitize as simsan
from repro.dcc.monitor import AnomalyKind
from repro.obs import NULL_OBS
from repro.util.tokenbucket import TokenBucket


class PolicyKind(enum.IntEnum):
    RATE_LIMIT = 1
    BLOCK = 2

    def __str__(self) -> str:
        return self.name


@dataclass
class Policy:
    """An active control policy on one client."""

    kind: PolicyKind
    expires_at: float
    #: for RATE_LIMIT: allowed attributed-query rate (QPS)
    rate: float = 0.0
    reason: Optional[AnomalyKind] = None
    bucket: Optional[TokenBucket] = None

    def active(self, now: float) -> bool:
        return now < self.expires_at

    def remaining(self, now: float) -> float:
        return max(0.0, self.expires_at - now)

    def permits(self, now: float) -> bool:
        """Does this policy let one more query through right now?"""
        if self.kind == PolicyKind.BLOCK:
            return False
        assert self.bucket is not None
        return self.bucket.try_consume(now)


@dataclass
class PolicyTemplate:
    """How to police a given anomaly kind."""

    kind: PolicyKind
    duration: float
    rate: float = 0.0


#: Default anomaly -> policy mapping, straight from Section 5.1.
DEFAULT_TEMPLATES: Dict[AnomalyKind, PolicyTemplate] = {
    AnomalyKind.NXDOMAIN: PolicyTemplate(PolicyKind.RATE_LIMIT, duration=20.0, rate=100.0),
    AnomalyKind.AMPLIFICATION: PolicyTemplate(PolicyKind.BLOCK, duration=30.0),
    AnomalyKind.RATE: PolicyTemplate(PolicyKind.RATE_LIMIT, duration=20.0, rate=100.0),
}

#: Policy applied when an upstream signal (not local conviction) tells a
#: resolver to control a client: the paper's forwarder experiment
#: configures blocking as "the default policy for signal-triggered
#: policing" (Section 5.1).
SIGNAL_TRIGGERED_TEMPLATE = PolicyTemplate(PolicyKind.BLOCK, duration=30.0)


@dataclass
class PolicingStats:
    policies_activated: int = 0
    policies_expired: int = 0
    queries_blocked: int = 0
    queries_rate_limited: int = 0
    queries_passed: int = 0


class PolicyEngine:
    """Active policies per client, with expiry callbacks."""

    def __init__(
        self,
        templates: Optional[Dict[AnomalyKind, PolicyTemplate]] = None,
        on_expire: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.templates = dict(DEFAULT_TEMPLATES if templates is None else templates)
        self.on_expire = on_expire
        self._policies: Dict[str, Policy] = {}
        self.stats = PolicingStats()
        #: observability facade + the owning shim's track (scenario wiring)
        self.obs = NULL_OBS
        self.obs_track = ""

    # ------------------------------------------------------------------
    # activation
    # ------------------------------------------------------------------
    def convict(self, client: str, kind: AnomalyKind, now: float) -> Policy:
        """Activate the template policy for ``kind`` on ``client``."""
        template = self.templates.get(
            kind, PolicyTemplate(PolicyKind.RATE_LIMIT, duration=20.0, rate=100.0)
        )
        return self.apply(client, template, now, reason=kind)

    def apply(
        self,
        client: str,
        template: PolicyTemplate,
        now: float,
        reason: Optional[AnomalyKind] = None,
    ) -> Policy:
        policy = Policy(
            kind=template.kind,
            expires_at=now + template.duration,
            rate=template.rate,
            reason=reason,
        )
        if simsan.ENABLED and policy.expires_at < now:
            simsan.fail(
                f"policy for {client!r} expires in the past "
                f"({policy.expires_at!r} < {now!r}); negative duration?"
            )
        if policy.kind == PolicyKind.RATE_LIMIT:
            policy.bucket = TokenBucket(max(template.rate, 1e-9), max(template.rate, 1.0))
        self._policies[client] = policy
        self.stats.policies_activated += 1
        if self.obs.enabled:
            self.obs.inc("police.activations")
            self.obs.instant(
                "police.activate",
                self.obs_track,
                now,
                client=client,
                kind=policy.kind.name,
                duration=template.duration,
            )
        return policy

    # ------------------------------------------------------------------
    # enforcement (the pre-queue check)
    # ------------------------------------------------------------------
    def check(self, client: str, now: float) -> bool:
        """True if a query attributed to ``client`` may proceed to FQ."""
        policy = self._policies.get(client)
        if policy is None:
            self.stats.queries_passed += 1
            return True
        if not policy.active(now):
            self._expire(client)
            self.stats.queries_passed += 1
            return True
        if policy.permits(now):
            self.stats.queries_passed += 1
            return True
        if policy.kind == PolicyKind.BLOCK:
            self.stats.queries_blocked += 1
            if self.obs.enabled:
                self.obs.inc("police.queries_blocked")
        else:
            self.stats.queries_rate_limited += 1
            if self.obs.enabled:
                self.obs.inc("police.queries_rate_limited")
        return False

    def _expire(self, client: str) -> None:
        self._policies.pop(client, None)
        self.stats.policies_expired += 1
        if self.obs.enabled:
            # No clock in here (expiry is detected lazily): counter only.
            self.obs.inc("police.expirations")
        if self.on_expire is not None:
            self.on_expire(client)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def policy_for(self, client: str, now: float) -> Optional[Policy]:
        policy = self._policies.get(client)
        if policy is not None and not policy.active(now):
            self._expire(client)
            return None
        return policy

    def is_policed(self, client: str, now: float) -> bool:
        return self.policy_for(client, now) is not None

    def active_policies(self, now: float) -> Dict[str, Policy]:
        return {
            client: policy
            for client, policy in self._policies.items()
            if policy.active(now)
        }

    def sweep(self, now: float) -> int:
        """Expire stale policies eagerly; returns how many were removed."""
        stale = [c for c, p in self._policies.items() if not p.active(now)]
        for client in stale:
            self._expire(client)
        return len(stale)
