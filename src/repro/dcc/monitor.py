"""Per-client anomaly monitoring (paper Section 3.2.2).

The FQ scheduler guarantees fair channel shares, but attackers can still
craft query patterns that hurt disproportionately: amplification
(requests eliciting many queries), pseudo-random names bypassing the
cache into NXDOMAIN floods, etc.  The monitor tracks a set of metrics
per client over a sliding window and runs an alarm -> suspicion ->
conviction state machine:

- at the end of each window, any metric over threshold raises an
  **alarm**;
- the first alarm puts the client in a **suspicious** state;
- reaching ``alarm_threshold`` alarms within ``suspicion_period``
  **convicts** the client (pre-queue policing takes over);
- a suspicious client with no conviction by the end of the period is
  **released**.

The remaining-alarms countdown is exported to the signaling layer: it is
what the upstream's anomaly signal carries so a downstream resolver can
police the true culprit before the upstream polices *it*
(Section 3.3.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dnscore.rdata import RCode
from repro.obs import NULL_OBS
from repro.obs.sketch import SpaceSaving
from repro.util.sliding import SlidingWindowCounter, SlidingWindowRatio


class AnomalyKind(enum.IntEnum):
    """Why a client is considered anomalous (carried in signals)."""

    NXDOMAIN = 1  # pseudo-random subdomain / Water Torture pattern
    AMPLIFICATION = 2  # disproportionate queries per request
    RATE = 3  # raw request-rate excess

    def __str__(self) -> str:
        return self.name


class ClientVerdict(enum.Enum):
    NORMAL = "normal"
    SUSPICIOUS = "suspicious"
    CONVICTED = "convicted"


@dataclass
class MonitorConfig:
    """Thresholds (defaults mirror the paper's evaluation, Section 5.1)."""

    window: float = 2.0
    #: alarms within the suspicion period that convict a client
    alarm_threshold: int = 10
    suspicion_period: float = 60.0
    #: NXDOMAIN-to-all-responses ratio that raises an alarm
    nxdomain_ratio_threshold: float = 0.2
    #: attributed queries a *single* request may spawn before the request
    #: counts as an amplification anomaly (per-request, so a forwarder's
    #: mixed traffic cannot dilute an attacker hiding behind it)
    amplification_threshold: float = 5.0
    #: amplification-anomalous requests per window that raise an alarm
    amplification_request_threshold: float = 4.0
    #: client request rate (QPS) that raises an alarm; None disables
    request_rate_threshold: Optional[float] = None
    #: ignore windows with fewer observations than this (noise floor)
    min_observations: int = 4
    #: run O(k)-memory Space-Saving top-talker sketches alongside the
    #: per-client sliding windows (0 disables; see repro.obs.sketch)
    heavy_hitter_k: int = 0


@dataclass
class AnomalyEvent:
    """One alarm, reported from :meth:`AnomalyMonitor.evaluate`."""

    client: str
    kind: AnomalyKind
    alarms: int
    #: remaining alarms until conviction (the signal countdown)
    countdown: int
    convicted: bool


class _ClientState:
    __slots__ = (
        "requests",
        "queries",
        "anomalous_requests",
        "nx_ratio",
        "verdict",
        "alarms",
        "suspicious_since",
        "last_kind",
        "last_seen",
        "sensitivity_boost",
    )

    def __init__(self, config: MonitorConfig) -> None:
        self.requests = SlidingWindowCounter(config.window)
        self.queries = SlidingWindowCounter(config.window)
        self.anomalous_requests = SlidingWindowCounter(config.window)
        self.nx_ratio = SlidingWindowRatio(config.window)
        self.verdict = ClientVerdict.NORMAL
        self.alarms = 0
        self.suspicious_since: Optional[float] = None
        self.last_kind: Optional[AnomalyKind] = None
        self.last_seen = 0.0
        #: alarms added by external pressure (policing signals received
        #: from upstream lower our own conviction bar, Section 3.3.2)
        self.sensitivity_boost = 0


@dataclass
class MonitorStats:
    alarms_raised: int = 0
    convictions: int = 0
    releases: int = 0
    external_alarms: int = 0


class AnomalyMonitor:
    """Tracks per-client anomaly metrics and the suspicion state machine."""

    def __init__(self, config: Optional[MonitorConfig] = None) -> None:
        self.config = config or MonitorConfig()
        self._clients: Dict[str, _ClientState] = {}
        self.stats = MonitorStats()
        self._sensitivity_until = 0.0
        self._base_nx_threshold = self.config.nxdomain_ratio_threshold
        self._base_amp_threshold = self.config.amplification_request_threshold
        #: observability facade + the owning shim's track (scenario wiring)
        self.obs = NULL_OBS
        self.obs_track = ""
        #: optional O(k) top-talker sketches (heavy_hitter_k > 0); an
        #: alternative to walking every _ClientState for rankings
        self.hh_queries: Optional[SpaceSaving] = None
        self.hh_nxdomain: Optional[SpaceSaving] = None
        if self.config.heavy_hitter_k > 0:
            self.hh_queries = SpaceSaving(self.config.heavy_hitter_k)
            self.hh_nxdomain = SpaceSaving(self.config.heavy_hitter_k)

    def _state(self, client: str, now: float) -> _ClientState:
        state = self._clients.get(client)
        if state is None:
            state = _ClientState(self.config)
            self._clients[client] = state
        state.last_seen = now
        return state

    # ------------------------------------------------------------------
    # event feeds (called from the shim's I/O path)
    # ------------------------------------------------------------------
    def record_request(self, client: str, now: float) -> None:
        """A client request entered the resolution path (cache misses
        only: cache hits are 'treated as normal by DCC', Section 3.2.3)."""
        self._state(client, now).requests.add(now)

    def record_query(self, client: str, now: float) -> None:
        """An outgoing query was attributed to ``client``."""
        self._state(client, now).queries.add(now)
        if self.hh_queries is not None:
            self.hh_queries.offer(client)

    def record_answer(self, client: str, rcode: RCode, now: float) -> None:
        """An upstream answer for a query attributed to ``client``."""
        nxdomain = rcode == RCode.NXDOMAIN
        self._state(client, now).nx_ratio.record(now, hit=nxdomain)
        if nxdomain and self.hh_nxdomain is not None:
            self.hh_nxdomain.offer(client)

    def record_anomalous_request(self, client: str, now: float) -> None:
        """One of the client's requests crossed the per-request
        amplification threshold (reported by the shim the moment the
        request's attributed-query count exceeds it)."""
        self._state(client, now).anomalous_requests.add(now)

    def raise_sensitivity(self, now: float, factor: float = 0.5, duration: float = 30.0) -> None:
        """Temporarily tighten detection thresholds (Section 3.3.2):
        called when an upstream policing signal shows we failed to catch
        the culprit ourselves."""
        if self._sensitivity_until <= now:
            self._base_nx_threshold = self.config.nxdomain_ratio_threshold
            self._base_amp_threshold = self.config.amplification_request_threshold
            self.config.nxdomain_ratio_threshold *= factor
            self.config.amplification_request_threshold = max(
                1.0, self.config.amplification_request_threshold * factor
            )
        self._sensitivity_until = now + duration

    def _maybe_restore_sensitivity(self, now: float) -> None:
        if self._sensitivity_until and now > self._sensitivity_until:
            self.config.nxdomain_ratio_threshold = self._base_nx_threshold
            self.config.amplification_request_threshold = self._base_amp_threshold
            self._sensitivity_until = 0.0

    def external_alarm(self, client: str, kind: AnomalyKind, now: float, weight: int = 1) -> Optional[AnomalyEvent]:
        """Pressure from upstream signals: count extra alarms directly.

        Used when an upstream anomaly signal names this client as the
        suspect, or when a policing signal tells us to raise sensitivity.
        """
        state = self._state(client, now)
        self.stats.external_alarms += 1
        return self._raise_alarm(client, state, kind, now, weight=weight)

    # ------------------------------------------------------------------
    # window evaluation
    # ------------------------------------------------------------------
    def evaluate(self, now: float) -> List[AnomalyEvent]:
        """End-of-window check across all tracked clients.

        Call every ``config.window`` seconds (the shim schedules this).
        """
        self._maybe_restore_sensitivity(now)
        events: List[AnomalyEvent] = []
        for client, state in list(self._clients.items()):
            self._maybe_release(client, state, now)
            kind = self._detect(state, now)
            if kind is None:
                continue
            event = self._raise_alarm(client, state, kind, now)
            if event is not None:
                events.append(event)
        return events

    def _detect(self, state: _ClientState, now: float) -> Optional[AnomalyKind]:
        observations = state.nx_ratio.observations(now)
        config = self.config

        if state.anomalous_requests.total(now) >= config.amplification_request_threshold:
            return AnomalyKind.AMPLIFICATION
        if (
            observations >= config.min_observations
            and state.nx_ratio.ratio(now) > config.nxdomain_ratio_threshold
        ):
            return AnomalyKind.NXDOMAIN
        if (
            config.request_rate_threshold is not None
            and state.requests.rate(now) > config.request_rate_threshold
        ):
            return AnomalyKind.RATE
        return None

    def _raise_alarm(
        self, client: str, state: _ClientState, kind: AnomalyKind, now: float, weight: int = 1
    ) -> Optional[AnomalyEvent]:
        if state.verdict == ClientVerdict.CONVICTED:
            return None  # already policed; nothing new to report
        if state.verdict == ClientVerdict.NORMAL:
            state.verdict = ClientVerdict.SUSPICIOUS
            state.suspicious_since = now
            state.alarms = 0
        state.alarms += weight
        state.last_kind = kind
        self.stats.alarms_raised += weight
        threshold = self.config.alarm_threshold
        convicted = state.alarms >= threshold
        if self.obs.enabled:
            self.obs.inc("monitor.alarms")
            self.obs.instant(
                "monitor.alarm",
                self.obs_track,
                now,
                client=client,
                kind=kind.name,
                alarms=state.alarms,
            )
        if convicted:
            state.verdict = ClientVerdict.CONVICTED
            self.stats.convictions += 1
            if self.obs.enabled:
                self.obs.inc("monitor.convictions")
        return AnomalyEvent(
            client=client,
            kind=kind,
            alarms=state.alarms,
            countdown=max(0, threshold - state.alarms),
            convicted=convicted,
        )

    def _maybe_release(self, client: str, state: _ClientState, now: float) -> None:
        if (
            state.verdict == ClientVerdict.SUSPICIOUS
            and state.suspicious_since is not None
            and now - state.suspicious_since > self.config.suspicion_period
        ):
            state.verdict = ClientVerdict.NORMAL
            state.alarms = 0
            state.suspicious_since = None
            self.stats.releases += 1

    # ------------------------------------------------------------------
    # queries from the shim / signaling
    # ------------------------------------------------------------------
    def verdict(self, client: str) -> ClientVerdict:
        state = self._clients.get(client)
        return state.verdict if state is not None else ClientVerdict.NORMAL

    def countdown(self, client: str) -> int:
        state = self._clients.get(client)
        if state is None or state.verdict == ClientVerdict.NORMAL:
            return self.config.alarm_threshold
        return max(0, self.config.alarm_threshold - state.alarms)

    def last_kind(self, client: str) -> Optional[AnomalyKind]:
        state = self._clients.get(client)
        return state.last_kind if state is not None else None

    def clear_conviction(self, client: str) -> None:
        """Called when a policy expires.

        The client drops back to *suspicious* with its alarm count
        intact: the suspicion period (Section 3.2.2) has not ended, so a
        single further alarm re-convicts immediately -- this is what
        keeps a persistent attacker "rate limited until the end"
        (Section 5.1, Scenario 2) instead of oscillating.  The normal
        release path (no alarms for a full suspicion period) still
        applies via :meth:`evaluate`.
        """
        state = self._clients.get(client)
        if state is not None and state.verdict == ClientVerdict.CONVICTED:
            state.verdict = ClientVerdict.SUSPICIOUS
            state.alarms = max(0, self.config.alarm_threshold - 1)
            if state.suspicious_since is None:
                state.suspicious_since = state.last_seen

    def top_talkers(self, n: int, now: float) -> List[tuple]:
        """The ``n`` clients issuing the most attributed queries, as
        ``(client, count)`` pairs.

        With ``heavy_hitter_k`` configured this reads the O(k)
        Space-Saving sketch (counts are lifetime totals, error bounded
        by n/k); otherwise it falls back to walking every tracked
        client's sliding window (exact, but O(clients) memory -- the
        cost the sketch exists to avoid).
        """
        if self.hh_queries is not None:
            return [(hh.key, hh.count) for hh in self.hh_queries.top(n)]
        ranked = sorted(
            ((client, state.queries.total(now)) for client, state in self._clients.items()),
            key=lambda item: (-item[1], item[0]),
        )
        return ranked[:n]

    def tracked_clients(self) -> int:
        return len(self._clients)

    def purge(self, now: float, idle_timeout: float) -> int:
        """Drop state for clients idle longer than ``idle_timeout``."""
        stale = [
            client
            for client, state in self._clients.items()
            if now - state.last_seen > idle_timeout
            and state.verdict == ClientVerdict.NORMAL
        ]
        for client in stale:
            del self._clients[client]
        return len(stale)
