"""MOPI-FQ: multi-output pseudo-isolated fair queuing.

This is a faithful implementation of the paper's Appendix B pseudocode
(Figure 13) and the surrounding prose:

- a single **entry pool** of fixed capacity backs all per-output queues;
  free entries form a linked free list (``avail_slots``);
- each active output channel has a **flattened calendar queue**
  (Figure 7c): a doubly-linked run of entries logically divided into
  scheduling rounds, with per-round tail pointers in a ring buffer
  (``round_tails``) and per-source latest-round tracking
  (``source_latest``);
- an **ordered output sequence** (``out_seq``) keyed by the arrival time
  of each queue's head message (or the predicted availability time of a
  congested channel) decides which queue dequeues next -- preserving
  global arrival order up to fair-scheduling reordering and congestion;
- a **token bucket per channel** enforces the channel capacity, defined
  as min(ingress limit of the upstream, egress limit of the resolver).

Enqueue failure modes follow Figure 13 exactly:

- ``FAIL_CLIENT_OVERSPEED``: the source's next round would exceed
  ``current_round + MAX_ROUND`` -- the client alone is overrunning its
  fair share window;
- ``FAIL_CHANNEL_CONGESTED``: the output queue is at ``MAX_POQ_DEPTH``
  and the message would land in or after the latest round;
- ``FAIL_QUEUE_OVERFLOW``: the shared pool is exhausted (and the message
  cannot displace a later-round one).

When a full queue receives a message destined for an *earlier* round
than the latest (i.e. from a source below its fair share), the message
at the tail of the latest round is evicted to make room, which is the
mechanism behind the max-min fairness proof (Appendix B.2: "evicting out
a message of some other source from the latest round if the queue is
full").

Per-source shares are supported per Appendix B.1.3: a source with share
``w`` may place ``w`` messages in each scheduling round.

Complexities, as analysed in B.1: space ``O(|O| + q)``; enqueue and
dequeue ``O(log |O|)`` (the logarithm comes solely from ``out_seq``).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import sanitize as simsan
from repro.obs import NULL_OBS
from repro.util.tokenbucket import TokenBucket
from repro.util.ordmap import OrderedMap
from repro.util.ringbuf import RingBuffer

#: SimSan: run the full O(depth) structural check every Nth operation
#: (the O(1)/O(sources) checks run on every operation)
_SAN_FULL_CHECK_EVERY = 256


class EnqueueStatus(enum.Enum):
    SUCCESS = "success"
    FAIL_CLIENT_OVERSPEED = "client_overspeed"
    FAIL_CHANNEL_CONGESTED = "channel_congested"
    FAIL_QUEUE_OVERFLOW = "queue_overflow"

    @property
    def ok(self) -> bool:
        return self is EnqueueStatus.SUCCESS


@dataclass
class MopiFqConfig:
    """Scheduler parameters (defaults follow the paper's evaluation
    setup, Section 5: per-queue capacity 100, MAX_ROUND 75, pool 100K)."""

    max_poq_depth: int = 100
    max_round: int = 75
    pool_capacity: int = 100_000
    #: default capacity (queries/second) for channels without an explicit
    #: entry; the shim overrides per destination.
    default_channel_rate: float = 1000.0
    default_channel_burst: Optional[float] = None


@dataclass
class DequeuedMessage:
    """What :meth:`MopiFq.dequeue` hands back."""

    source: str
    destination: str
    payload: Any
    arr_time: float


@dataclass
class EvictedMessage:
    """A queued message displaced by a fairer arrival."""

    source: str
    destination: str
    payload: Any


class _QEntry:
    """Pool entry: doubly linked, also reused as a free-list node."""

    __slots__ = ("next", "prev", "source", "payload", "arr_time", "round", "in_use")

    def __init__(self) -> None:
        self.next: Optional["_QEntry"] = None
        self.prev: Optional["_QEntry"] = None
        self.source: str = ""
        self.payload: Any = None
        self.arr_time: float = 0.0
        self.round: int = 0
        self.in_use = False


class _PoqState:
    """Per-output-queue state (``poq_state`` in the pseudocode)."""

    __slots__ = (
        "depth",
        "head",
        "tail",
        "round_tails",
        "current_round",
        "latest_round",
        "source_latest",
        "source_count",
        "out_key",
    )

    def __init__(self, max_round: int) -> None:
        self.depth = 0
        self.head: Optional[_QEntry] = None
        self.tail: Optional[_QEntry] = None
        self.round_tails = RingBuffer(max_round)
        self.current_round = 0
        #: highest round with a queued message
        self.latest_round = -1
        #: source -> [latest round enqueued, remaining quota in that round]
        self.source_latest: Dict[str, List[int]] = {}
        #: source -> queued message count (state lifetime per B.1.1)
        self.source_count: Dict[str, int] = {}
        #: current key in out_seq, or None when inactive there
        self.out_key: Optional[Tuple[float, int]] = None


@dataclass
class MopiFqStats:
    enqueued: int = 0
    dequeued: int = 0
    evicted: int = 0
    fail_overspeed: int = 0
    fail_congested: int = 0
    fail_overflow: int = 0
    dequeue_empty: int = 0
    #: (source -> messages dequeued) per destination, for fairness checks
    output_per_source: Dict[str, Dict[str, int]] = field(default_factory=dict)


class MopiFq:
    """The MOPI-FQ scheduler.

    ``share_of`` maps a source to its integral share (Section 3.2.1's
    client share allocation); the default gives everyone share 1.
    """

    def __init__(
        self,
        config: Optional[MopiFqConfig] = None,
        share_of: Optional[Callable[[str], int]] = None,
        sanitize: Optional[bool] = None,
    ) -> None:
        self.config = config or MopiFqConfig()
        self.share_of = share_of or (lambda source: 1)
        #: SimSan: verify scheduler invariants after every operation
        #: (defaults to the REPRO_SIMSAN environment switch)
        self._san = simsan.ENABLED if sanitize is None else bool(sanitize)
        self._san_last_round: Dict[str, int] = {}
        self._san_ops = 0
        # Pre-allocated entry pool with an intrusive free list.
        self._pool = [_QEntry() for _ in range(self.config.pool_capacity)]
        for i in range(self.config.pool_capacity - 1):
            self._pool[i].next = self._pool[i + 1]
        self._avail: Optional[_QEntry] = self._pool[0] if self._pool else None
        self.total_depth = 0

        self._poq: Dict[str, _PoqState] = {}
        self._rate_lim: Dict[str, TokenBucket] = {}
        self._out_seq: OrderedMap = OrderedMap()
        self._seq = itertools.count()
        self.stats = MopiFqStats()
        #: observability facade (one enabled-test per op when off)
        self.obs = NULL_OBS

    # ------------------------------------------------------------------
    # channel configuration
    # ------------------------------------------------------------------
    def set_channel_capacity(
        self, destination: str, rate: float, burst: Optional[float] = None
    ) -> None:
        """Fix a channel's capacity: min(upstream ingress RL, own egress
        RL), learned by probing, operator config, or DCC signaling
        (Section 3.2.1 footnote)."""
        self._rate_lim[destination] = TokenBucket(rate, burst)

    def channel_bucket(self, destination: str) -> TokenBucket:
        bucket = self._rate_lim.get(destination)
        if bucket is None:
            bucket = TokenBucket(
                self.config.default_channel_rate, self.config.default_channel_burst
            )
            self._rate_lim[destination] = bucket
        return bucket

    # ------------------------------------------------------------------
    # pool plumbing
    # ------------------------------------------------------------------
    def _alloc(self) -> Optional[_QEntry]:
        entry = self._avail
        if entry is None:
            return None
        self._avail = entry.next
        entry.next = entry.prev = None
        entry.in_use = True
        return entry

    def _recycle(self, entry: _QEntry) -> None:
        entry.payload = None
        entry.source = ""
        entry.prev = None
        entry.in_use = False
        entry.next = self._avail
        self._avail = entry

    # ------------------------------------------------------------------
    # enqueue (Figure 13 right column)
    # ------------------------------------------------------------------
    def enqueue(
        self, source: str, destination: str, payload: Any, now: float
    ) -> Tuple[EnqueueStatus, Optional[EvictedMessage]]:
        """Insert a message; returns the status and any evicted victim."""
        state = self._poq.get(destination)
        if state is None:
            state = _PoqState(self.config.max_round)
            self._poq[destination] = state

        crt_r = state.current_round
        lat_r = state.latest_round
        src_nxt = self._src_next_round(state, source)

        if src_nxt >= crt_r + self.config.max_round:
            self.stats.fail_overspeed += 1
            self._drop_poq_if_empty(destination, state)
            return EnqueueStatus.FAIL_CLIENT_OVERSPEED, None

        evicted: Optional[EvictedMessage] = None
        if state.depth >= self.config.max_poq_depth:
            if src_nxt >= lat_r:
                self.stats.fail_congested += 1
                return EnqueueStatus.FAIL_CHANNEL_CONGESTED, None
            evicted = self._evict_latest(destination, state)
            # Eviction of the only entry deactivates the queue; revive it
            # for the insertion about to happen.
            self._poq[destination] = state

        if self.total_depth >= self.config.pool_capacity:
            if src_nxt >= lat_r or state.depth == 0:
                self.stats.fail_overflow += 1
                self._drop_poq_if_empty(destination, state)
                return EnqueueStatus.FAIL_QUEUE_OVERFLOW, None
            if evicted is None:
                evicted = self._evict_latest(destination, state)
                self._poq[destination] = state

        entry = self._alloc()
        if entry is None:  # pool exhausted despite accounting: defensive
            self.stats.fail_overflow += 1
            self._drop_poq_if_empty(destination, state)
            return EnqueueStatus.FAIL_QUEUE_OVERFLOW, None

        entry.source = source
        entry.payload = payload
        entry.arr_time = now
        entry.round = src_nxt
        self._append_to_round(destination, state, entry)
        self._note_enqueue(state, source, src_nxt)
        self.total_depth += 1
        self.stats.enqueued += 1
        if self.obs.enabled:
            self.obs.observe("mopifq.enqueue_depth", state.depth)
        if self._san:
            self._sanitize_op(destination)
        return EnqueueStatus.SUCCESS, evicted

    def _src_next_round(self, state: _PoqState, source: str) -> int:
        """``get_src_next_round``: where this source's next message goes."""
        latest = state.source_latest.get(source)
        if latest is None:
            return state.current_round
        round_no, quota_left = latest
        if quota_left > 0:
            return max(round_no, state.current_round)
        return max(round_no + 1, state.current_round)

    def _note_enqueue(self, state: _PoqState, source: str, round_no: int) -> None:
        share = max(1, int(self.share_of(source)))
        latest = state.source_latest.get(source)
        if latest is not None and latest[0] == round_no and latest[1] > 0:
            latest[1] -= 1
        else:
            state.source_latest[source] = [round_no, share - 1]
        state.source_count[source] = state.source_count.get(source, 0) + 1

    def _append_to_round(self, destination: str, state: _PoqState, entry: _QEntry) -> None:
        """``append_poq_round``: link the entry at the end of its round."""
        round_no = entry.round
        anchor: Optional[_QEntry] = state.round_tails.get(round_no)
        if anchor is None:
            # End of the nearest non-empty earlier round (bounded scan:
            # at most MAX_ROUND slots -> constant time).
            probe = round_no - 1
            while probe >= state.current_round:
                anchor = state.round_tails.get(probe)
                if anchor is not None:
                    break
                probe -= 1

        if anchor is None:
            # New head of the queue.
            entry.next = state.head
            if state.head is not None:
                state.head.prev = entry
            state.head = entry
            if state.tail is None:
                state.tail = entry
            self._reposition_out_key(destination, state)
        else:
            entry.next = anchor.next
            entry.prev = anchor
            if anchor.next is not None:
                anchor.next.prev = entry
            anchor.next = entry
            if state.tail is anchor:
                state.tail = entry

        state.round_tails.set(round_no, entry)
        if round_no > state.latest_round:
            state.latest_round = round_no
        state.depth += 1

    # ------------------------------------------------------------------
    # dequeue (Figure 13 left column)
    # ------------------------------------------------------------------
    def dequeue(self, now: float) -> Optional[DequeuedMessage]:
        """Pick the ready channel whose head arrived earliest and pop it.

        Congested channels are re-keyed in ``out_seq`` at their predicted
        availability time; returns ``None`` when no channel is ready
        (``FAIL_NO_DATA_OR_ALL_CONGESTED``).
        """
        while self._out_seq:
            key, destination = self._out_seq.min_item()
            if key[0] > now:
                self.stats.dequeue_empty += 1
                return None
            state = self._poq.get(destination)
            if state is None or state.head is None:  # defensive
                del self._out_seq[key]
                continue
            bucket = self.channel_bucket(destination)
            if not bucket.try_consume(now):
                # Skip and retry when the bucket predicts availability.
                del self._out_seq[key]
                retry_at = bucket.next_available(now)
                new_key = (retry_at, next(self._seq))
                state.out_key = new_key
                self._out_seq[new_key] = destination
                continue
            message = self._remove_head(destination, state)
            if self._san:
                self._sanitize_op(destination)
            return message
        self.stats.dequeue_empty += 1
        return None

    def next_ready_time(self, now: float) -> Optional[float]:
        """Earliest time a dequeue might succeed; None when empty.

        Drives the event-driven dequeue pump in the shim (the paper's
        prototype burns a busy-waiting thread instead; virtual time lets
        us do better without changing behaviour).
        """
        if not self._out_seq:
            return None
        key, _ = self._out_seq.min_item()
        return max(key[0], now)

    def _remove_head(self, destination: str, state: _PoqState) -> DequeuedMessage:
        entry = state.head
        assert entry is not None
        result = DequeuedMessage(
            source=entry.source,
            destination=destination,
            payload=entry.payload,
            arr_time=entry.arr_time,
        )
        self._unlink(destination, state, entry)
        self.stats.dequeued += 1
        per_dst = self.stats.output_per_source.setdefault(destination, {})
        per_dst[result.source] = per_dst.get(result.source, 0) + 1
        return result

    def _evict_latest(self, destination: str, state: _PoqState) -> EvictedMessage:
        """Displace the tail of the latest round (fairness eviction)."""
        victim = state.round_tails.get(state.latest_round)
        assert victim is not None, "latest round must be non-empty"
        evicted = EvictedMessage(
            source=victim.source, destination=destination, payload=victim.payload
        )
        self._unlink(destination, state, victim)
        self.stats.evicted += 1
        return evicted

    def _unlink(self, destination: str, state: _PoqState, entry: _QEntry) -> None:
        """Remove ``entry`` from its queue, fixing every piece of state."""
        prev_entry, next_entry = entry.prev, entry.next
        if prev_entry is not None:
            prev_entry.next = next_entry
        if next_entry is not None:
            next_entry.prev = prev_entry
        head_changed = state.head is entry
        if head_changed:
            state.head = next_entry
        if state.tail is entry:
            state.tail = prev_entry

        # Round-tail bookkeeping.
        if state.round_tails.get(entry.round) is entry:
            if prev_entry is not None and prev_entry.round == entry.round:
                state.round_tails.set(entry.round, prev_entry)
            else:
                state.round_tails.clear_at(entry.round)
                if entry.round == state.latest_round:
                    state.latest_round = prev_entry.round if prev_entry is not None else -1

        # Source bookkeeping: per B.1.1, per-source state lives exactly
        # as long as the source has messages queued for this output.
        count = state.source_count.get(entry.source, 0) - 1
        if count <= 0:
            state.source_count.pop(entry.source, None)
            state.source_latest.pop(entry.source, None)
        else:
            state.source_count[entry.source] = count

        state.depth -= 1
        self.total_depth -= 1

        if state.head is None:
            self._deactivate(destination, state)
        else:
            state.current_round = state.head.round
            if head_changed:
                self._reposition_out_key(destination, state)

        self._recycle(entry)

    def _reposition_out_key(self, destination: str, state: _PoqState) -> None:
        """Re-key the channel in out_seq by its (new) head arrival time."""
        if state.out_key is not None:
            self._out_seq.pop(state.out_key, None)
        assert state.head is not None
        key = (state.head.arr_time, next(self._seq))
        state.out_key = key
        self._out_seq[key] = destination

    def _deactivate(self, destination: str, state: _PoqState) -> None:
        if state.out_key is not None:
            self._out_seq.pop(state.out_key, None)
            state.out_key = None
        del self._poq[destination]
        if self._san:
            # A later reactivation restarts the round clock at 0; drop
            # the monotonicity watermark along with the queue state.
            self._san_last_round.pop(destination, None)

    def _drop_poq_if_empty(self, destination: str, state: _PoqState) -> None:
        """Undo the speculative poq creation for a failed first enqueue."""
        if state.depth == 0 and state.out_key is None:
            self._poq.pop(destination, None)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def active_outputs(self) -> int:
        return len(self._poq)

    def queue_depth(self, destination: str) -> int:
        state = self._poq.get(destination)
        return state.depth if state is not None else 0

    def queued_sources(self, destination: str) -> Dict[str, int]:
        state = self._poq.get(destination)
        return dict(state.source_count) if state is not None else {}

    def queue_snapshot(self, destination: str) -> List[Tuple[str, int]]:
        """(source, round) pairs in queue order, for tests/invariants."""
        state = self._poq.get(destination)
        if state is None:
            return []
        snapshot = []
        entry = state.head
        while entry is not None:
            snapshot.append((entry.source, entry.round))
            entry = entry.next
        return snapshot

    def check_invariants(self) -> None:
        """Assert structural invariants; used by property tests."""
        depth_sum = 0
        for destination, state in self._poq.items():
            snapshot = self.queue_snapshot(destination)
            assert len(snapshot) == state.depth, f"{destination}: depth mismatch"
            rounds = [r for _, r in snapshot]
            assert rounds == sorted(rounds), f"{destination}: rounds not monotone"
            if rounds:
                assert rounds[0] == state.current_round
                assert rounds[-1] == state.latest_round
                assert state.latest_round < state.current_round + self.config.max_round
            counts: Dict[str, int] = {}
            per_round: Dict[int, Dict[str, int]] = {}
            for source, round_no in snapshot:
                counts[source] = counts.get(source, 0) + 1
                per_round.setdefault(round_no, {})
                per_round[round_no][source] = per_round[round_no].get(source, 0) + 1
            assert counts == state.source_count, f"{destination}: source counts"
            for round_no, sources in per_round.items():
                for source, cnt in sources.items():
                    share = max(1, int(self.share_of(source)))
                    assert cnt <= share, (
                        f"{destination}: source {source} has {cnt} > share {share} "
                        f"messages in round {round_no}"
                    )
            assert state.out_key is not None and state.out_key in self._out_seq
            depth_sum += state.depth
        assert depth_sum == self.total_depth, "total_depth mismatch"
        assert len(self._out_seq) == len(self._poq), "out_seq size mismatch"

    # ------------------------------------------------------------------
    # SimSan runtime checks
    # ------------------------------------------------------------------
    def _sanitize_op(self, destination: str) -> None:
        """SimSan (paper Appendix B invariants), run after every
        enqueue/dequeue when sanitizing:

        - message conservation: enqueued = dequeued + evicted + queued;
        - active-source accounting consistent with queue occupancy;
        - per-output scheduling rounds never move backwards while the
          output stays active;
        - the full structural :meth:`check_invariants` every
          ``_SAN_FULL_CHECK_EVERY`` operations.
        """
        stats = self.stats
        queued = stats.enqueued - stats.dequeued - stats.evicted
        if queued != self.total_depth:
            simsan.fail(
                "message conservation broken: enqueued "
                f"{stats.enqueued} != dequeued {stats.dequeued} + evicted "
                f"{stats.evicted} + queued {self.total_depth}"
            )
        state = self._poq.get(destination)
        if state is None:
            self._san_last_round.pop(destination, None)
        else:
            occupancy = sum(state.source_count.values())
            if occupancy != state.depth:
                simsan.fail(
                    f"{destination}: active-source accounting ({occupancy} "
                    f"messages across {len(state.source_count)} sources) "
                    f"disagrees with queue depth {state.depth}"
                )
            last = self._san_last_round.get(destination)
            if last is not None and state.current_round < last:
                simsan.fail(
                    f"{destination}: per-output virtual time moved backwards "
                    f"(round {last} -> {state.current_round})"
                )
            self._san_last_round[destination] = state.current_round
        self._san_ops += 1
        if self._san_ops % _SAN_FULL_CHECK_EVERY == 0:
            try:
                self.check_invariants()
            except AssertionError as exc:
                raise simsan.SimSanViolation(
                    f"structural invariant violation: {exc}"
                ) from exc

    def state_entry_count(self) -> int:
        """Number of live state entries (Table 1 / Figure 10 accounting):
        queued messages + per-output structures + per-source trackers."""
        per_source = sum(len(state.source_latest) for state in self._poq.values())
        return self.total_depth + len(self._poq) + len(self._rate_lim) + per_source
