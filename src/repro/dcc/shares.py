"""Client share-allocation strategies (paper Section 3.2.1).

MOPI-FQ divides each channel among clients *according to their
predefined shares*.  The paper sketches how operators assign them:

    "One simple strategy is to peg the share to the resolver's ingress
    rate limit: with a default per-client limit (e.g., 1500 for Google
    Public DNS), all clients are initially allotted the same share;
    clients admitted with higher limits get proportionally higher
    shares. (...) The share allocation can also be based on clients'
    query histories."

This module provides those strategies as pluggable ``share_of``
callables for :class:`~repro.dcc.mopifq.MopiFq` /
:class:`~repro.dcc.shim.DccConfig`:

- :class:`EqualShares` -- everyone gets 1 (the evaluation default);
- :class:`RateLimitPeggedShares` -- share proportional to the client's
  admitted ingress rate limit;
- :class:`HistoryBasedShares` -- share follows a long-horizon EWMA of
  the client's *benign* query volume, so long-standing heavy users
  (e.g. a large ISP forwarder) keep proportional capacity while a
  newcomer cannot buy share by bursting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional


class EqualShares:
    """Every client weighs the same (the paper's evaluation setting)."""

    def __call__(self, client: str) -> int:
        return 1


@dataclass
class RateLimitPeggedShares:
    """Share proportional to the admitted ingress rate limit.

    ``default_limit`` mirrors the resolver's default per-client ingress
    limit (e.g. Google's 1500 QPS); clients granted higher limits (ISPs
    can request raises) receive proportionally higher shares.
    """

    default_limit: float = 1500.0
    admitted_limits: Dict[str, float] = field(default_factory=dict)
    max_share: int = 64

    def admit(self, client: str, limit: float) -> None:
        """Record an operator-approved rate limit for ``client``."""
        if limit <= 0:
            raise ValueError(f"limit must be positive, got {limit}")
        self.admitted_limits[client] = limit

    def __call__(self, client: str) -> int:
        limit = self.admitted_limits.get(client, self.default_limit)
        share = max(1, round(limit / self.default_limit))
        return min(share, self.max_share)


@dataclass
class HistoryBasedShares:
    """Share follows a slow EWMA of historical benign query volume.

    ``observe(client, queries, benign)`` feeds the accounting (the shim
    can call it per monitoring window); the share is the client's EWMA
    volume relative to the per-client baseline, clamped to
    [1, max_share].  Convicted windows contribute nothing, so an
    attacker cannot farm share.
    """

    baseline: float = 100.0  # queries/window worth one share
    alpha: float = 0.05  # EWMA smoothing (slow on purpose)
    max_share: int = 16
    _ewma: Dict[str, float] = field(default_factory=dict)

    def observe(self, client: str, queries: float, benign: bool = True) -> None:
        previous = self._ewma.get(client, 0.0)
        sample = queries if benign else 0.0
        self._ewma[client] = (1 - self.alpha) * previous + self.alpha * sample

    def __call__(self, client: str) -> int:
        volume = self._ewma.get(client, 0.0)
        share = int(math.floor(volume / self.baseline)) + 1
        return max(1, min(share, self.max_share))

    def history_of(self, client: str) -> float:
        return self._ewma.get(client, 0.0)
