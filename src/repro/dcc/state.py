"""DCC runtime state tables (paper Table 1).

DCC maintains state at three granularities, each created and destroyed
in tandem with the corresponding resolver state:

- **per-client**: monitoring metrics (owned by
  :class:`~repro.dcc.monitor.AnomalyMonitor`) and pre-queue policies
  (owned by :class:`~repro.dcc.policing.PolicyEngine`), for policed
  clients only;
- **per-server**: queuing state -- per-output queue depth, round
  pointers, channel token buckets (owned by the scheduler);
- **per-request**: query statistics and signal status, held here, alive
  only for the request's lifespan at the resolver.

This module owns the per-request table and aggregates the accounting
across all three granularities for the Table 1 / Figure 10 measurements
(entry counts and approximate bytes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dcc.monitor import AnomalyKind


@dataclass
class PerRequestState:
    """Query statistics and signal status for one in-flight client
    request (the last column of Table 1)."""

    client: str
    request_id: int
    created_at: float
    queries_attributed: int = 0
    queries_sent: int = 0
    dropped_congestion: int = 0
    dropped_policing: int = 0
    #: the anomaly this request exhibited, if any (drives the local
    #: anomaly signal on its response)
    anomaly: Optional[AnomalyKind] = None
    #: signals received from upstream, to relay on the response
    relay_signals: List[object] = field(default_factory=list)
    #: fair rate currently allocated to the client on the congested
    #: channel (reported in congestion signals)
    allocated_rate: float = 0.0

    #: rough per-entry footprint used by the Figure 10 memory proxy
    APPROX_BYTES = 96

    @property
    def key(self) -> Tuple[str, int]:
        return (self.client, self.request_id)


class DccStateTables:
    """The per-request table plus cross-granularity accounting."""

    #: per-client and per-server entry footprints for the memory proxy
    PER_CLIENT_BYTES = 160  # sliding windows + verdict + policy slot
    PER_SERVER_BYTES = 120  # queue head/tails + rounds + token bucket

    def __init__(self, request_lifetime: float = 30.0) -> None:
        self.request_lifetime = request_lifetime
        self._requests: Dict[Tuple[str, int], PerRequestState] = {}
        self.created = 0
        self.completed = 0
        self.purged = 0

    # ------------------------------------------------------------------
    # per-request lifecycle
    # ------------------------------------------------------------------
    def open_request(self, client: str, request_id: int, now: float) -> PerRequestState:
        key = (client, request_id)
        state = self._requests.get(key)
        if state is None:
            state = PerRequestState(client=client, request_id=request_id, created_at=now)
            self._requests[key] = state
            self.created += 1
        return state

    def get_request(self, client: str, request_id: int) -> Optional[PerRequestState]:
        return self._requests.get((client, request_id))

    def close_request(self, client: str, request_id: int) -> Optional[PerRequestState]:
        state = self._requests.pop((client, request_id), None)
        if state is not None:
            self.completed += 1
        return state

    def purge(self, now: float) -> int:
        """Drop request entries past their lifetime (leaked by clients
        that never saw a response, e.g. dropped on the floor upstream)."""
        stale = [
            key
            for key, state in self._requests.items()
            if now - state.created_at > self.request_lifetime
        ]
        for key in stale:
            del self._requests[key]
        self.purged += len(stale)
        return len(stale)

    # ------------------------------------------------------------------
    # accounting (Table 1 / Figure 10)
    # ------------------------------------------------------------------
    def open_request_count(self) -> int:
        return len(self._requests)

    def approx_bytes(
        self, tracked_clients: int, tracked_servers: int, queued_messages: int
    ) -> int:
        """Approximate resident bytes across all three granularities."""
        return (
            tracked_clients * self.PER_CLIENT_BYTES
            + tracked_servers * self.PER_SERVER_BYTES
            + (len(self._requests) + queued_messages) * PerRequestState.APPROX_BYTES
        )
