"""Backend-neutral transport protocols and the bounded in-flight table.

Two small structural protocols describe everything the resolver, the
DCC shim, and the query engine need from a backend:

- :class:`Clock` -- virtual or real time plus deterministic timers and
  named seeded RNG streams.  :class:`repro.netsim.sim.Simulator`
  satisfies it as-is; :class:`repro.transport.udp.AsyncioClock` is the
  real-time twin.
- :class:`Fabric` -- the message plane (`attach`/`send`/`node`/`stats`).
  :class:`repro.netsim.link.Network` satisfies it as-is;
  :class:`repro.transport.udp.UdpFabric` moves the same
  :class:`~repro.dnscore.message.Message` objects over real localhost
  datagrams via the wire codec.

Nothing in ``repro.server`` or ``repro.dcc`` imports this module: those
layers stay backend-blind and the protocols here are checked
structurally (``@runtime_checkable``), not by inheritance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Generic,
    List,
    Optional,
    Protocol,
    Tuple,
    TypeVar,
    runtime_checkable,
)


@runtime_checkable
class TimerHandle(Protocol):
    """A scheduled callback that can be cancelled exactly once."""

    def cancel(self) -> None:
        ...


@runtime_checkable
class Clock(Protocol):
    """Time, timers, and seeded randomness -- the ``sim`` duck type.

    ``schedule_at`` differs between backends in one documented way: the
    virtual simulator raises on times in the past (a past event is a
    logic bug under virtual time), while a real-time clock *clamps* to
    "now" (the wall moved while we computed the target -- inherent, not
    a bug).  Callers that run on both backends must treat past targets
    as "fire immediately", which every in-tree caller already does.
    """

    @property
    def now(self) -> float:
        ...

    def rng(self, stream: str) -> random.Random:
        ...

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> TimerHandle:
        ...

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> TimerHandle:
        ...

    def call_soon(self, fn: Callable[..., None], *args: Any) -> TimerHandle:
        ...


@runtime_checkable
class Fabric(Protocol):
    """The message plane connecting :class:`repro.netsim.node.Node`s."""

    def attach(self, node: Any) -> None:
        ...

    def node(self, address: str) -> Optional[Any]:
        ...

    def send(self, src: str, dst: str, message: Any) -> None:
        ...


class TransportBackend(Protocol):
    """A (clock, fabric) pair plus lifecycle -- what experiments hold."""

    @property
    def clock(self) -> Clock:
        ...

    @property
    def fabric(self) -> Fabric:
        ...


E = TypeVar("E")


@dataclass
class InflightStats:
    """Counters for the bounded in-flight table (graceful degradation)."""

    inserted: int = 0
    completed: int = 0
    shed_capacity: int = 0
    liveness_violations: int = 0
    high_watermark: int = 0


@dataclass
class InflightEntry(Generic[E]):
    """One outstanding query: its deadline plus caller payload."""

    key: int
    deadline: float
    added_at: float
    payload: E
    resolved: bool = False


class InflightTable(Generic[E]):
    """Bounded table of outstanding queries with oldest-first shedding.

    The paper's shim is a middlebox: under backpressure it must degrade
    gracefully rather than grow without bound.  This table enforces a
    hard capacity -- inserting into a full table evicts the *oldest*
    entries (they are the closest to their deadline and the least worth
    completing) and returns them so the caller can cancel timers and
    report a shed verdict.

    It also carries the liveness oracle the acceptance criteria demand:
    :meth:`overdue` returns every entry that has outlived its deadline
    by more than ``grace`` without being resolved -- a non-empty answer
    at harvest time means some query silently hung, which is a bug in
    whichever backend was driving the table.
    """

    def __init__(self, capacity: int, stats: Optional[InflightStats] = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.stats = stats if stats is not None else InflightStats()
        # dict preserves insertion order => FIFO eviction without a heap
        self._entries: Dict[int, InflightEntry[E]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: int) -> bool:
        return key in self._entries

    def get(self, key: int) -> Optional[InflightEntry[E]]:
        return self._entries.get(key)

    def insert(
        self, key: int, deadline: float, now: float, payload: E
    ) -> List[InflightEntry[E]]:
        """Add an entry; returns the entries shed to make room (oldest first)."""
        if key in self._entries:
            raise KeyError(f"in-flight key {key} already present")
        shed: List[InflightEntry[E]] = []
        while len(self._entries) >= self.capacity:
            oldest_key = next(iter(self._entries))
            shed.append(self._entries.pop(oldest_key))
            self.stats.shed_capacity += 1
        self._entries[key] = InflightEntry(key, deadline, now, payload)
        self.stats.inserted += 1
        if len(self._entries) > self.stats.high_watermark:
            self.stats.high_watermark = len(self._entries)
        return shed

    def rekey(self, old_key: int, new_key: int) -> InflightEntry[E]:
        """Move an entry to a new key (retransmit with a fresh message id)."""
        entry = self._entries.pop(old_key)
        if new_key in self._entries:
            self._entries[old_key] = entry
            raise KeyError(f"in-flight key {new_key} already present")
        entry.key = new_key
        self._entries[new_key] = entry
        return entry

    def complete(self, key: int) -> Optional[InflightEntry[E]]:
        """Remove and return the entry, or None if already gone (late answer)."""
        entry = self._entries.pop(key, None)
        if entry is not None:
            entry.resolved = True
            self.stats.completed += 1
        return entry

    def overdue(self, now: float, grace: float = 1.0) -> List[InflightEntry[E]]:
        """Entries past deadline + grace: the no-silent-hangs liveness check."""
        stuck = [e for e in self._entries.values() if now > e.deadline + grace]
        self.stats.liveness_violations = len(stuck)
        return stuck

    def pop_overdue(self, now: float, grace: float = 0.0) -> List[InflightEntry[E]]:
        """Remove and return overdue entries (the periodic audit's reclaim).

        Unlike :meth:`overdue` -- a read-only oracle that *reports*
        stuck entries at harvest -- this is the repair path: the caller
        verdicts each returned entry (the query engine reports them as
        timeouts), so a peer crash that orphans table entries cannot
        leave them lingering until capacity shedding.  Does not touch
        ``liveness_violations``: reclaimed entries were not silent hangs.
        """
        keys = [k for k, e in self._entries.items() if now > e.deadline + grace]
        reclaimed: List[InflightEntry[E]] = []
        for key in keys:
            entry = self._entries.pop(key)
            entry.resolved = True
            self.stats.completed += 1
            reclaimed.append(entry)
        return reclaimed

    def entries(self) -> List[InflightEntry[E]]:
        return list(self._entries.values())


@dataclass
class TransportStats:
    """Fabric counters, field-compatible with netsim's ``NetworkStats``.

    The shared fields let report code read either backend's stats
    object without caring which it got; the extra fields only exist on
    the socket path.
    """

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_lost: int = 0
    messages_unroutable: int = 0
    messages_dropped_down: int = 0
    messages_cut: int = 0
    bytes_sent: int = 0
    # socket-path extras
    decode_errors: int = 0
    paced: int = 0
    shed_backpressure: int = 0
    tcp_queries: int = 0
    tcp_responses: int = 0
    extra: Dict[str, int] = field(default_factory=dict)
