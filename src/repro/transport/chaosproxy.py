"""Fault-injecting UDP proxy: the socket analogue of ``netsim/faults``.

The virtual backend injects loss/jitter inside the fabric itself
(:class:`repro.netsim.faults.LinkDegradation`); on real sockets the
equivalent is a man-in-the-middle datagram proxy.  A
:class:`ChaosProxy` interposes on one fabric channel (say resolver <->
authoritative) by claiming the route in both directions; neither
endpoint's code knows it is there, exactly like a lossy path in
production.

**Determinism.**  Acceptance requires two same-seed runs to report
identical application-layer counts, but real sockets do not deliver
packets in a reproducible order -- so fault decisions must not depend
on packet *arrival order*.  Each datagram's fate is instead a pure
function of ``(seed, direction, DNS question, per-question occurrence
number)``, hashed through SHA-256: the n-th packet carrying a given
qname always gets the same verdict regardless of how flows interleave
on the wire.  (Queries with unique qnames -- the norm for cache-miss
workloads and NX floods -- therefore see i.i.d.-looking but fully
reproducible loss.)

Fault model per datagram: independent **drop**, **duplicate** (the
copy is sent after an extra deterministic delay), and **delay**
(uniform in ``[delay_min, delay_max]``); delaying some packets and not
others is also how *reordering* arises, as it does on real paths.  TC
fallback traffic is TCP and intentionally bypasses the proxy.
"""

from __future__ import annotations

import asyncio
import hashlib
from dataclasses import dataclass, field
from functools import partial
from typing import Dict, Optional, Tuple

from repro.dnscore.wire import WireDecodeError, decode_message
from repro.transport.udp import AsyncioClock, SockAddr, UdpFabric


@dataclass(frozen=True)
class ChaosSpec:
    """Per-datagram fault probabilities for one proxied channel."""

    drop: float = 0.0
    duplicate: float = 0.0
    delay_prob: float = 0.0
    delay_min: float = 0.0
    delay_max: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "delay_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")
        if self.delay_min < 0 or self.delay_max < self.delay_min:
            raise ValueError(
                f"bad delay range [{self.delay_min}, {self.delay_max}]"
            )


@dataclass(frozen=True)
class FaultDecision:
    drop: bool
    duplicate: bool
    delay: float
    duplicate_delay: float


@dataclass
class ChaosStats:
    received: int = 0
    forwarded: int = 0
    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    undecodable: int = 0
    #: forwards abandoned because the destination node was crashed
    unroutable: int = 0
    per_direction: Dict[str, int] = field(default_factory=dict)


class FaultSchedule:
    """Order-independent seeded fault decisions (see module docstring).

    The spec may be swapped mid-run (:meth:`set_spec`) -- that is how
    the chaos orchestrator drives degradation ramps and partitions:
    occurrence counters persist across swaps, so a datagram's hash
    material never depends on *when* the spec changed, only the
    probabilities it is tested against do.
    """

    def __init__(self, seed: int, spec: ChaosSpec) -> None:
        self._seed = seed
        self._default = spec
        self._overrides: Dict[str, ChaosSpec] = {}
        self._occurrence: Dict[Tuple[str, str], int] = {}

    def set_spec(self, spec: ChaosSpec, direction: Optional[str] = None) -> None:
        """Swap fault probabilities; ``direction=None`` sets the default."""
        if direction is None:
            self._default = spec
        else:
            self._overrides[direction] = spec

    def spec_for(self, direction: str) -> ChaosSpec:
        return self._overrides.get(direction, self._default)

    def decide(self, direction: str, key: str) -> FaultDecision:
        """The fate of the next datagram with ``key`` in ``direction``."""
        occ_key = (direction, key)
        occurrence = self._occurrence.get(occ_key, 0)
        self._occurrence[occ_key] = occurrence + 1
        return self.peek(direction, key, occurrence)

    def peek(self, direction: str, key: str, occurrence: int) -> FaultDecision:
        """Pure decision function; ``decide`` = ``peek`` + counter bump."""
        material = f"{self._seed}|{direction}|{key}|{occurrence}".encode()
        digest = hashlib.sha256(material).digest()
        u_drop = int.from_bytes(digest[0:8], "big") / 2**64
        u_dup = int.from_bytes(digest[8:16], "big") / 2**64
        u_delay = int.from_bytes(digest[16:24], "big") / 2**64
        u_amount = int.from_bytes(digest[24:32], "big") / 2**64
        spec = self.spec_for(direction)
        delay = 0.0
        if u_delay < spec.delay_prob:
            delay = spec.delay_min + u_amount * (spec.delay_max - spec.delay_min)
        return FaultDecision(
            drop=u_drop < spec.drop,
            duplicate=u_dup < spec.duplicate,
            delay=delay,
            # the duplicate trails the original by a deterministic extra
            # hop so the pair arrives reordered at least sometimes
            duplicate_delay=delay + 0.001 + u_amount * 0.004,
        )


class _RelayProtocol(asyncio.DatagramProtocol):
    """One direction of the proxy: receive, decide, (maybe) forward."""

    def __init__(self, proxy: "ChaosProxy", direction: str) -> None:
        self._proxy = proxy
        self._direction = direction
        self.transport: Optional[asyncio.DatagramTransport] = None

    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        self.transport = transport  # type: ignore[assignment]

    def datagram_received(self, data: bytes, addr: SockAddr) -> None:
        self._proxy._on_datagram(self._direction, data)


class ChaosProxy:
    """Interpose seeded faults on one bidirectional fabric channel.

    Call :meth:`start` after ``fabric.start()``: it binds one relay
    socket per direction, diverts the fabric's ``a -> b`` and ``b -> a``
    routes through them, and registers the relay sockets as aliases so
    each endpoint still attributes traffic to its true peer.
    """

    def __init__(
        self,
        fabric: UdpFabric,
        clock: AsyncioClock,
        a: str,
        b: str,
        spec: ChaosSpec,
        seed: int,
    ) -> None:
        self._fabric = fabric
        self._clock = clock
        self._a = a
        self._b = b
        self._schedule = FaultSchedule(seed, spec)
        self.stats = ChaosStats()
        self._relay: Dict[str, asyncio.DatagramTransport] = {}
        #: direction label -> the *fabric address* packets forward to;
        #: resolved to a socket address lazily at forward time, so a
        #: crashed node blackholes and a restarted one re-routes without
        #: the proxy being told
        self._dest_node: Dict[str, str] = {self._fwd_label(a, b): b,
                                           self._fwd_label(b, a): a}
        self._fwd = self._fwd_label(a, b)
        self._rev = self._fwd_label(b, a)

    @staticmethod
    def _fwd_label(src: str, dst: str) -> str:
        return f"{src}>{dst}"

    @property
    def channel(self) -> "Tuple[str, str]":
        return (self._a, self._b)

    def direction(self, src: str, dst: str) -> str:
        """The direction label for ``src -> dst`` on this channel."""
        label = self._fwd_label(src, dst)
        if label not in self._dest_node:
            raise KeyError(f"{src}->{dst} is not on channel {self._a}<->{self._b}")
        return label

    def set_spec(self, spec: ChaosSpec, direction: Optional[str] = None) -> None:
        """Swap the fault spec mid-run; occurrence counters persist."""
        self._schedule.set_spec(spec, direction)

    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        for direction, src, dst in (
            (self._fwd, self._a, self._b),
            (self._rev, self._b, self._a),
        ):
            transport, _protocol = await loop.create_datagram_endpoint(
                partial(_RelayProtocol, self, direction), local_addr=("127.0.0.1", 0)
            )
            sockaddr = transport.get_extra_info("sockname")
            self._relay[direction] = transport
            self._fabric.set_route(src, dst, sockaddr)
            # the receiver sees the relay's sockaddr; keep attribution on
            # the true sender
            self._fabric.register_peer(sockaddr, src)

    def close(self) -> None:
        for direction in sorted(self._relay):
            self._relay[direction].close()

    # ------------------------------------------------------------------
    # datagram path
    # ------------------------------------------------------------------
    def _on_datagram(self, direction: str, data: bytes) -> None:
        self.stats.received += 1
        self.stats.per_direction[direction] = self.stats.per_direction.get(direction, 0) + 1
        decision = self._schedule.decide(direction, self._key(data))
        if decision.drop:
            self.stats.dropped += 1
            return
        if decision.delay > 0:
            self.stats.delayed += 1
            self._clock.schedule(decision.delay, self._forward, direction, data)
        else:
            self._forward(direction, data)
        if decision.duplicate:
            self.stats.duplicated += 1
            self._clock.schedule(decision.duplicate_delay, self._forward, direction, data)

    def _key(self, data: bytes) -> str:
        try:
            message = decode_message(data)
        except WireDecodeError:
            self.stats.undecodable += 1
            return f"raw:{hashlib.sha256(data).hexdigest()[:16]}"
        return f"{message.question.name}/{int(message.question.rrtype)}"

    def _forward(self, direction: str, data: bytes) -> None:
        transport = self._relay.get(direction)
        if transport is None or transport.is_closing():
            return
        dest = self._fabric.udp_address_if_bound(self._dest_node[direction])
        if dest is None:
            # the destination node is crashed (socket closed): the
            # packet blackholes, exactly as it would on the real path
            self.stats.unroutable += 1
            return
        transport.sendto(data, dest)
        self.stats.forwarded += 1
