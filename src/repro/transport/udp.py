"""Real-socket backend: asyncio UDP (+ one-shot TCP fallback) on localhost.

This module is the only place in the tree allowed to read the wall
clock (reprolint scopes the R1 exemption to exactly this file): it
implements the :class:`repro.transport.base.Clock` protocol over the
asyncio event loop and the :class:`~repro.transport.base.Fabric`
protocol over real ``127.0.0.1`` datagram sockets speaking wire-format
DNS via :mod:`repro.dnscore.wire`.

Everything above it -- resolver, DCC shim, MOPI-FQ, policing, health --
runs unmodified: nodes are attached exactly as they are to the virtual
:class:`~repro.netsim.link.Network`, timers land on
``loop.call_later`` instead of the event heap, and messages take a real
encode -> sendto -> recvfrom -> decode round trip.

Design notes:

- **Addressing.**  Nodes keep their simulation addresses ("10.0.0.53");
  the fabric maps them to ephemeral localhost socket addresses at
  :meth:`UdpFabric.start` and maps inbound packet sources back.  Route
  overrides (:meth:`UdpFabric.set_route`) let the chaos proxy interpose
  on a channel without either endpoint knowing.
- **Message ids.**  Simulation-internal ids are 31-bit; the wire format
  carries 16.  The fabric records ``(receiver, peer, wire_id) ->
  internal_id`` when a query is sent and restores the internal id on
  the matching response, so resolver bookkeeping is oblivious to the
  truncation.
- **TCP fallback.**  A ``via_tcp`` query opens a one-shot RFC 7766
  length-prefixed stream connection; the response returns on the same
  connection and is delivered with ``via_tcp=True``.  The chaos proxy
  does not interpose on TCP (its fault model is datagram loss).
- **Pacing / backpressure.**  Optional per-sender token-bucket pacing
  with a bounded queue; overflow sheds the *oldest* queued datagram
  (graceful degradation, mirroring the engine's in-flight table).
"""

from __future__ import annotations

import asyncio
import random
import time
from collections import OrderedDict, deque
from functools import partial
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.dnscore.message import Message
from repro.dnscore.wire import WireDecodeError, decode_message, encode_message
from repro.transport.base import TransportStats
from repro.util.tokenbucket import TokenBucket

SockAddr = Tuple[str, int]

#: one-shot TCP exchanges that outlive this are abandoned
TCP_EXCHANGE_TIMEOUT = 5.0
#: wire-id rewrite map size; oldest entries evict first
_WIRE_ID_CAP = 8192


class AsyncioTimer:
    """Cancellable timer handle mirroring :class:`repro.netsim.sim.Event`."""

    __slots__ = ("fn", "args", "cancelled", "fired", "_handle", "_clock")

    def __init__(self, clock: "AsyncioClock", fn: Callable[..., None], args: Tuple[Any, ...]) -> None:
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = False
        self._handle: Optional[asyncio.TimerHandle] = None
        self._clock = clock

    def cancel(self) -> None:
        if self.fired or self.cancelled:
            return
        self.cancelled = True
        if self._handle is not None:
            self._handle.cancel()
        self._clock._pending_count -= 1


class AsyncioClock:
    """The :class:`~repro.transport.base.Clock` protocol on the event loop.

    Time is ``loop.time()`` relative to :meth:`start`, so a run begins
    at ``t = 0`` like a simulation does.  RNG streams use the exact
    seeding scheme of :meth:`repro.netsim.sim.Simulator.rng` -- the same
    ``(seed, stream)`` pair yields the same draws on either backend,
    which is what makes chaos schedules and workloads reproducible over
    real sockets.

    ``schedule_at`` *clamps* targets in the past to "now" instead of
    raising: under a real clock the wall can move while the target is
    being computed, which is inherent rather than a caller bug (the DCC
    shim's pump re-arm hits this under load).
    """

    def __init__(self, seed: int = 42) -> None:
        self._seed = seed
        self._rngs: Dict[str, random.Random] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._epoch = 0.0
        self.events_processed = 0
        self._pending_count = 0
        #: wall-clock timestamp of start(), for report provenance only
        self.wall_start: Optional[float] = None

    def start(self, loop: Optional[asyncio.AbstractEventLoop] = None) -> None:
        if self._loop is not None:
            return
        self._loop = loop if loop is not None else asyncio.get_running_loop()
        self._epoch = self._loop.time()
        self.wall_start = time.time()

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def now(self) -> float:
        if self._loop is None:
            return 0.0
        return self._loop.time() - self._epoch

    def rng(self, stream: str) -> random.Random:
        rng = self._rngs.get(stream)
        if rng is None:
            rng = random.Random(f"{self._seed}:{stream}")
            self._rngs[stream] = rng
        return rng

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> AsyncioTimer:
        if delay < 0:
            raise ValueError(f"cannot schedule {delay}s in the past")
        if self._loop is None:
            raise RuntimeError("AsyncioClock.schedule before start()")
        timer = AsyncioTimer(self, fn, args)
        timer._handle = self._loop.call_later(delay, self._fire, timer)
        self._pending_count += 1
        return timer

    def schedule_at(self, when: float, fn: Callable[..., None], *args: Any) -> AsyncioTimer:
        return self.schedule(max(0.0, when - self.now), fn, *args)

    def call_soon(self, fn: Callable[..., None], *args: Any) -> AsyncioTimer:
        if self._loop is None:
            raise RuntimeError("AsyncioClock.call_soon before start()")
        timer = AsyncioTimer(self, fn, args)
        timer._handle = self._loop.call_soon(self._fire, timer)  # type: ignore[assignment]
        self._pending_count += 1
        return timer

    def pending(self) -> int:
        return self._pending_count

    def _fire(self, timer: AsyncioTimer) -> None:
        if timer.cancelled:
            return
        timer.fired = True
        self._pending_count -= 1
        self.events_processed += 1
        # exceptions propagate to the loop's exception handler on purpose
        # (a swallowed handler error is a silent desync -- see rule R9)
        timer.fn(*timer.args)


class _PacedSender:
    """Token-bucket pacing with a bounded queue; overflow sheds oldest."""

    def __init__(
        self,
        clock: AsyncioClock,
        transmit: Callable[[str, bytes, SockAddr], None],
        src: str,
        rate: float,
        burst: Optional[float],
        queue_limit: int,
        stats: TransportStats,
    ) -> None:
        self._clock = clock
        self._transmit = transmit
        self._src = src
        self._bucket = TokenBucket(rate, burst)
        self._queue: Deque[Tuple[bytes, SockAddr]] = deque()
        self._limit = queue_limit
        self._stats = stats
        self._timer: Optional[AsyncioTimer] = None

    def submit(self, data: bytes, dest: SockAddr) -> None:
        now = self._clock.now
        if not self._queue and self._bucket.try_consume(now):
            self._transmit(self._src, data, dest)
            return
        self._stats.paced += 1
        self._queue.append((data, dest))
        while len(self._queue) > self._limit:
            self._queue.popleft()
            self._stats.shed_backpressure += 1
        self._arm(now)

    def _arm(self, now: float) -> None:
        if self._timer is not None and not self._timer.fired and not self._timer.cancelled:
            return
        delay = max(0.0, self._bucket.next_available(now) - now)
        self._timer = self._clock.schedule(delay, self._pump)

    def _pump(self) -> None:
        now = self._clock.now
        while self._queue and self._bucket.try_consume(now):
            data, dest = self._queue.popleft()
            self._transmit(self._src, data, dest)
        if self._queue:
            self._arm(now)

    def close(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
        self._queue.clear()


class _UdpProtocol(asyncio.DatagramProtocol):
    """Per-node datagram endpoint delivering into the fabric."""

    def __init__(self, fabric: "UdpFabric", owner: str) -> None:
        self._fabric = fabric
        self._owner = owner
        self.transport: Optional[asyncio.DatagramTransport] = None

    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        self.transport = transport  # type: ignore[assignment]

    def datagram_received(self, data: bytes, addr: SockAddr) -> None:
        self._fabric._on_datagram(self._owner, data, addr)

    def error_received(self, exc: Exception) -> None:
        self._fabric.stats.extra["socket_errors"] = (
            self._fabric.stats.extra.get("socket_errors", 0) + 1
        )


class UdpFabric:
    """The :class:`~repro.transport.base.Fabric` protocol on real sockets."""

    def __init__(self, clock: AsyncioClock, host: str = "127.0.0.1") -> None:
        self._clock = clock
        self._host = host
        self._nodes: Dict[str, Any] = {}
        self.stats = TransportStats()
        #: Network-protocol compat; socket faults come from the chaos
        #: proxy, not an in-fabric shaper
        self.fault_shaper = None
        self._udp_transport: Dict[str, asyncio.DatagramTransport] = {}
        self._udp_addr: Dict[str, SockAddr] = {}
        self._tcp_addr: Dict[str, SockAddr] = {}
        self._tcp_servers: Dict[str, asyncio.AbstractServer] = {}
        self._peer: Dict[SockAddr, str] = {}
        self._route: Dict[Tuple[str, str], SockAddr] = {}
        self._pacers: Dict[str, _PacedSender] = {}
        self._tcp_reply: Dict[Tuple[str, int], "asyncio.Future[Message]"] = {}
        self._wire_ids: "OrderedDict[Tuple[str, str, int], int]" = OrderedDict()
        self._tasks: Dict[int, "asyncio.Task[None]"] = {}
        self._task_seq = 0
        self.tcp_errors: List[str] = []
        self._started = False

    # ------------------------------------------------------------------
    # Fabric protocol
    # ------------------------------------------------------------------
    def attach(self, node: Any) -> None:
        if node.address in self._nodes:
            raise ValueError(f"address {node.address} already attached")
        if self._started:
            raise RuntimeError("attach after start() is not supported")
        self._nodes[node.address] = node
        node.network = self
        node.sim = self._clock

    def node(self, address: str) -> Optional[Any]:
        return self._nodes.get(address)

    def send(self, src: str, dst: str, message: Message) -> None:
        self.stats.messages_sent += 1
        if message.via_tcp:
            self._send_tcp(src, dst, message)
            return
        data = encode_message(message)
        if message.is_query:
            self._note_wire_id(src, dst, message.id)
        dest = self._route.get((src, dst))
        if dest is None:
            dest = self._udp_addr.get(dst)
        if dest is None:
            self.stats.messages_unroutable += 1
            return
        pacer = self._pacers.get(src)
        if pacer is not None:
            pacer.submit(data, dest)
        else:
            self._transmit_datagram(src, data, dest)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind one UDP endpoint + one TCP listener per attached node."""
        if self._started:
            return
        loop = asyncio.get_running_loop()
        self._clock.start(loop)
        for address in sorted(self._nodes):
            transport, _protocol = await loop.create_datagram_endpoint(
                partial(_UdpProtocol, self, address), local_addr=(self._host, 0)
            )
            sockaddr = transport.get_extra_info("sockname")
            self._udp_transport[address] = transport
            self._udp_addr[address] = sockaddr
            self._peer[sockaddr] = address
            server = await asyncio.start_server(
                partial(self._tcp_serve, address), self._host, 0
            )
            self._tcp_servers[address] = server
            self._tcp_addr[address] = server.sockets[0].getsockname()
        self._started = True

    async def aclose(self) -> None:
        for address in sorted(self._pacers):
            self._pacers[address].close()
        for address in sorted(self._udp_transport):
            self._udp_transport[address].close()
        for address in sorted(self._tcp_servers):
            server = self._tcp_servers[address]
            server.close()
            await server.wait_closed()
        live = [task for task in self._tasks.values() if not task.done()]
        for task in live:
            task.cancel()
        if live:
            await asyncio.gather(*live, return_exceptions=True)
        self._tasks.clear()

    # ------------------------------------------------------------------
    # interposition hooks (chaos proxy) and pacing
    # ------------------------------------------------------------------
    def udp_address(self, address: str) -> SockAddr:
        return self._udp_addr[address]

    def udp_address_if_bound(self, address: str) -> Optional[SockAddr]:
        """The node's current socket address, or None while crashed.

        The chaos proxy resolves destinations through this at forward
        time instead of caching socket addresses, so a crash blackholes
        the channel and a restart (which re-binds to a fresh ephemeral
        port) transparently re-routes it.
        """
        return self._udp_addr.get(address)

    def set_route(self, src: str, dst: str, via: SockAddr) -> None:
        """Divert src->dst datagrams to ``via`` (a proxy's socket)."""
        self._route[(src, dst)] = via

    def register_peer(self, sockaddr: SockAddr, address: str) -> None:
        """Teach receivers that packets from ``sockaddr`` mean ``address``."""
        self._peer[sockaddr] = address

    def configure_pacing(
        self, address: str, rate: float, burst: Optional[float] = None, queue_limit: int = 256
    ) -> None:
        self._pacers[address] = _PacedSender(
            self._clock, self._transmit_datagram, address, rate, burst, queue_limit, self.stats
        )

    # ------------------------------------------------------------------
    # supervised node lifecycle (chaos orchestrator)
    # ------------------------------------------------------------------
    def crash_node(self, address: str) -> None:
        """Crash = process death: close sockets, lose all wire state.

        The node's UDP endpoint and TCP listener close, parked TCP reply
        slots it owned are cancelled (the serving coroutine unwinds and
        drops the connection), and its wire-id rewrite entries vanish --
        any response still in flight toward it arrives at a dead socket.
        ``node.crash()`` runs the usual ``on_crash`` state-loss hooks.
        """
        node = self._nodes.get(address)
        if node is None:
            raise KeyError(f"no node at {address}")
        if not node.up:
            return
        node.crash()
        transport = self._udp_transport.pop(address, None)
        if transport is not None and not transport.is_closing():
            transport.close()
        old_addr = self._udp_addr.pop(address, None)
        if old_addr is not None:
            self._peer.pop(old_addr, None)
        server = self._tcp_servers.pop(address, None)
        if server is not None:
            server.close()
        self._tcp_addr.pop(address, None)
        pacer = self._pacers.get(address)
        if pacer is not None:
            pacer.close()
        for key in [k for k in self._tcp_reply if k[0] == address]:
            slot = self._tcp_reply.pop(key)
            if not slot.done():
                slot.cancel()
        for key in [k for k in self._wire_ids if k[0] == address]:
            del self._wire_ids[key]
        self.stats.extra["node_crashes"] = self.stats.extra.get("node_crashes", 0) + 1

    def restart_node(self, address: str) -> None:
        """Restart a crashed node: re-bind fresh sockets, then recover.

        Safe to call from a clock callback; the re-bind itself is async
        (socket creation awaits the loop), so ``node.up`` flips only
        once the new endpoints exist.  The node restarts with whatever
        state its ``on_recover`` hook rebuilds -- in-flight queries from
        before the crash are gone, exactly like a process restart.
        """
        node = self._nodes.get(address)
        if node is None:
            raise KeyError(f"no node at {address}")
        if node.up:
            return
        self._spawn(self._rebind_node(address))

    async def _rebind_node(self, address: str) -> None:
        loop = asyncio.get_running_loop()
        transport, _protocol = await loop.create_datagram_endpoint(
            partial(_UdpProtocol, self, address), local_addr=(self._host, 0)
        )
        sockaddr = transport.get_extra_info("sockname")
        self._udp_transport[address] = transport
        self._udp_addr[address] = sockaddr
        self._peer[sockaddr] = address
        server = await asyncio.start_server(
            partial(self._tcp_serve, address), self._host, 0
        )
        self._tcp_servers[address] = server
        self._tcp_addr[address] = server.sockets[0].getsockname()
        node = self._nodes.get(address)
        if node is not None and not node.up:
            node.recover()
        self.stats.extra["node_restarts"] = self.stats.extra.get("node_restarts", 0) + 1

    # ------------------------------------------------------------------
    # datagram path
    # ------------------------------------------------------------------
    def _transmit_datagram(self, src: str, data: bytes, dest: SockAddr) -> None:
        transport = self._udp_transport.get(src)
        if transport is None or transport.is_closing():
            self.stats.messages_unroutable += 1
            return
        transport.sendto(data, dest)
        self.stats.bytes_sent += len(data)

    def _note_wire_id(self, src: str, dst: str, internal_id: int) -> None:
        # the *response* will arrive at src, from dst, under the 16-bit id
        self._wire_ids[(src, dst, internal_id & 0xFFFF)] = internal_id
        while len(self._wire_ids) > _WIRE_ID_CAP:
            self._wire_ids.popitem(last=False)

    def _on_datagram(self, owner: str, data: bytes, addr: SockAddr) -> None:
        try:
            message = decode_message(data)
        except WireDecodeError:
            self.stats.decode_errors += 1
            return
        src = self._peer.get(addr, "?")
        if message.is_response:
            internal = self._wire_ids.get((owner, src, message.id))
            if internal is not None:
                message.id = internal
        node = self._nodes.get(owner)
        if node is None:
            self.stats.messages_unroutable += 1
            return
        if not node.up:
            self.stats.messages_dropped_down += 1
            return
        self.stats.messages_delivered += 1
        node.receive(message, src)

    # ------------------------------------------------------------------
    # TCP fallback path (one-shot RFC 7766 exchanges)
    # ------------------------------------------------------------------
    def _send_tcp(self, src: str, dst: str, message: Message) -> None:
        slot = self._tcp_reply.get((src, message.id))
        if slot is not None:
            # a response to a TCP query we are currently serving: hand it
            # back to the waiting connection instead of opening a new one
            self._tcp_reply.pop((src, message.id))
            if not slot.done():
                slot.set_result(message)
            self.stats.tcp_responses += 1
            return
        self.stats.tcp_queries += 1
        self._spawn(self._tcp_exchange(src, dst, message))

    def _spawn(self, coro: Any) -> None:
        loop = asyncio.get_running_loop()
        self._task_seq += 1
        seq = self._task_seq
        task = loop.create_task(coro)
        self._tasks[seq] = task
        task.add_done_callback(partial(self._task_done, seq))

    def _task_done(self, seq: int, task: "asyncio.Task[None]") -> None:
        self._tasks.pop(seq, None)
        if task.cancelled():
            return
        exc = task.exception()
        if exc is not None:
            self.tcp_errors.append(f"{type(exc).__name__}: {exc}")

    async def _tcp_exchange(self, src: str, dst: str, message: Message) -> None:
        dest = self._tcp_addr.get(dst)
        if dest is None:
            self.stats.messages_unroutable += 1
            return
        data = encode_message(message)
        self._note_wire_id(src, dst, message.id)
        try:
            reader, writer = await asyncio.open_connection(dest[0], dest[1])
        except OSError:
            self.stats.extra["tcp_connect_failed"] = (
                self.stats.extra.get("tcp_connect_failed", 0) + 1
            )
            return
        try:
            # register our ephemeral port before any bytes hit the wire so
            # the server side can attribute the connection to `src`
            self._peer[writer.get_extra_info("sockname")] = src
            writer.write(len(data).to_bytes(2, "big") + data)
            await writer.drain()
            self.stats.bytes_sent += len(data) + 2
            raw = await asyncio.wait_for(_read_frame(reader), TCP_EXCHANGE_TIMEOUT)
        except (OSError, asyncio.TimeoutError, asyncio.IncompleteReadError):
            self.stats.extra["tcp_exchange_failed"] = (
                self.stats.extra.get("tcp_exchange_failed", 0) + 1
            )
            return
        finally:
            writer.close()
        try:
            response = decode_message(raw)
        except WireDecodeError:
            self.stats.decode_errors += 1
            return
        response.via_tcp = True
        internal = self._wire_ids.get((src, dst, response.id))
        if internal is not None:
            response.id = internal
        node = self._nodes.get(src)
        if node is None or not node.up:
            self.stats.messages_dropped_down += 1
            return
        self.stats.messages_delivered += 1
        self.stats.tcp_responses += 1
        node.receive(response, dst)

    async def _tcp_serve(
        self, owner: str, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            raw = await asyncio.wait_for(_read_frame(reader), TCP_EXCHANGE_TIMEOUT)
            query = decode_message(raw)
        except (OSError, asyncio.TimeoutError, asyncio.IncompleteReadError):
            writer.close()
            return
        except WireDecodeError:
            self.stats.decode_errors += 1
            writer.close()
            return
        query.via_tcp = True
        src = self._peer.get(writer.get_extra_info("peername"), "?")
        node = self._nodes.get(owner)
        if node is None or not node.up:
            self.stats.messages_dropped_down += 1
            writer.close()
            return
        loop = asyncio.get_running_loop()
        slot: "asyncio.Future[Message]" = loop.create_future()
        self._tcp_reply[(owner, query.id)] = slot
        self.stats.messages_delivered += 1
        node.receive(query, src)
        try:
            response = await asyncio.wait_for(slot, TCP_EXCHANGE_TIMEOUT)
            data = encode_message(response)
            writer.write(len(data).to_bytes(2, "big") + data)
            await writer.drain()
            self.stats.bytes_sent += len(data) + 2
        except (OSError, asyncio.TimeoutError):
            self.stats.extra["tcp_serve_failed"] = (
                self.stats.extra.get("tcp_serve_failed", 0) + 1
            )
        finally:
            self._tcp_reply.pop((owner, query.id), None)
            writer.close()


async def _read_frame(reader: asyncio.StreamReader) -> bytes:
    header = await reader.readexactly(2)
    return await reader.readexactly(int.from_bytes(header, "big"))


class UdpBackend:
    """Convenience bundle: an :class:`AsyncioClock` plus :class:`UdpFabric`."""

    def __init__(self, seed: int = 42, host: str = "127.0.0.1") -> None:
        self._clock = AsyncioClock(seed)
        self._fabric = UdpFabric(self._clock, host)

    @property
    def clock(self) -> AsyncioClock:
        return self._clock

    @property
    def fabric(self) -> UdpFabric:
        return self._fabric

    def attach(self, node: Any) -> None:
        self._fabric.attach(node)

    async def start(self) -> None:
        await self._fabric.start()

    async def aclose(self) -> None:
        await self._fabric.aclose()
