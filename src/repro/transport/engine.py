"""Backend-neutral wire query engine: RTO, pacing, TC fallback, shedding.

The robustness stack the tentpole requires at the client edge, written
against the :class:`~repro.transport.base.Clock` protocol only -- the
same engine instance logic runs on the virtual simulator (where the
unit tests pin its behaviour deterministically) and on
:class:`~repro.transport.udp.AsyncioClock` over real sockets:

- per-query retransmission with RFC 6298 RTO + Karn's rule, reusing
  :class:`repro.server.health.HealthRegistry` verbatim (``adaptive``
  mode) -- no parallel estimator implementation;
- token-bucket send pacing (:class:`repro.util.tokenbucket.TokenBucket`);
- EDNS-1232/TC handling: a truncated UDP response triggers one retry
  with ``via_tcp=True``, and TCP mode is preserved across retransmits;
- graceful degradation: a bounded
  :class:`~repro.transport.base.InflightTable` sheds the oldest query
  when full, and every query ends in an explicit verdict
  (answered / timeout / shed) -- the no-silent-hangs liveness property.

:class:`EngineClient` wraps the engine in a
:class:`~repro.netsim.node.Node` so a workload can drive a resolver
through it on either fabric.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.dnscore.message import Message
from repro.dnscore.name import Name
from repro.dnscore.rdata import RRType
from repro.netsim.node import Node
from repro.server.health import HealthConfig, HealthRegistry
from repro.transport.base import Clock, InflightTable, TimerHandle
from repro.util.tokenbucket import TokenBucket


class Verdict(enum.Enum):
    ANSWERED = "answered"
    TIMEOUT = "timeout"
    SHED = "shed"


def _default_health() -> HealthConfig:
    return HealthConfig(mode="adaptive")


@dataclass
class EngineConfig:
    #: retransmissions after the first attempt
    retries: int = 2
    #: hard per-query deadline; every query gets a verdict by then
    deadline: float = 4.0
    #: bounded in-flight table capacity (oldest-first shedding)
    inflight_capacity: int = 256
    #: token-bucket pacing of transmissions; None disables
    pace_rate: Optional[float] = None
    pace_burst: Optional[float] = None
    #: retry once over TCP when a UDP response comes back truncated
    tcp_fallback: bool = True
    #: periodic overdue-entry audit cadence; entries orphaned past their
    #: deadline (e.g. by a peer crash racing a timer) are reclaimed and
    #: verdicted as timeouts.  0 disables the audit.
    audit_interval: float = 1.0
    #: slack past the deadline before the audit reclaims an entry (the
    #: per-query timer normally finishes first; the audit is a backstop)
    audit_grace: float = 0.25
    health: HealthConfig = field(default_factory=_default_health)


@dataclass
class EngineStats:
    issued: int = 0
    answered: int = 0
    timeouts: int = 0
    shed: int = 0
    retransmits: int = 0
    tc_fallbacks: int = 0
    paced: int = 0
    unmatched: int = 0
    #: entries the periodic audit reclaimed past their deadline
    reclaimed_overdue: int = 0
    rcodes: Dict[str, int] = field(default_factory=dict)


@dataclass
class Outcome:
    """The terminal fate of one engine query."""

    verdict: Verdict
    qname: str
    rcode: str = ""
    response: Optional[Message] = None
    rtt: Optional[float] = None
    retransmits: int = 0
    used_tcp: bool = False


class _EngineQuery:
    __slots__ = (
        "qname", "qtype", "server", "message_id", "attempts_left", "deadline",
        "sent_at", "retransmitted", "retransmits", "via_tcp", "timer",
        "pace_timer", "callback", "done",
    )

    def __init__(
        self,
        qname: Name,
        qtype: RRType,
        server: str,
        deadline: float,
        attempts_left: int,
        callback: Optional[Callable[[Outcome], None]],
    ) -> None:
        self.qname = qname
        self.qtype = qtype
        self.server = server
        self.message_id = 0
        self.attempts_left = attempts_left
        self.deadline = deadline
        self.sent_at = 0.0
        self.retransmitted = False
        self.retransmits = 0
        self.via_tcp = False
        self.timer: Optional[TimerHandle] = None
        self.pace_timer: Optional[TimerHandle] = None
        self.callback = callback
        self.done = False


class QueryEngine:
    """Issue DNS queries with the full robustness stack (module docstring)."""

    def __init__(
        self,
        clock: Clock,
        transmit: Callable[[Message, str], None],
        config: Optional[EngineConfig] = None,
    ) -> None:
        self._clock = clock
        self._transmit = transmit
        self.config = config if config is not None else EngineConfig()
        self.stats = EngineStats()
        self.health = HealthRegistry(self.config.health, rng_factory=self._health_rng)
        self._inflight: InflightTable[_EngineQuery] = InflightTable(
            self.config.inflight_capacity
        )
        self._bucket: Optional[TokenBucket] = None
        if self.config.pace_rate is not None:
            self._bucket = TokenBucket(self.config.pace_rate, self.config.pace_burst)
        self._audit_timer: Optional[TimerHandle] = None

    def _health_rng(self):  # noqa: ANN202 - Callable[[], random.Random]
        return self._clock.rng("engine.health")

    # ------------------------------------------------------------------
    # issue path
    # ------------------------------------------------------------------
    def lookup(
        self,
        qname: Name,
        qtype: RRType,
        server: str,
        callback: Optional[Callable[[Outcome], None]] = None,
    ) -> int:
        """Start a query; its verdict arrives via ``callback``.

        Returns the initial message id (the in-flight key until the
        first retransmit rekeys it).
        """
        now = self._clock.now
        self.stats.issued += 1
        q = _EngineQuery(
            qname, qtype, server, now + self.config.deadline,
            self.config.retries, callback,
        )
        message = Message.query(qname, qtype, recursion_desired=True)
        q.message_id = message.id
        shed = self._inflight.insert(message.id, q.deadline, now, q)
        for entry in shed:
            self._finish(entry.payload, Verdict.SHED)
        self._arm_audit()
        self._send_attempt(q, message)
        return message.id

    def _arm_audit(self) -> None:
        if self.config.audit_interval <= 0 or self._audit_timer is not None:
            return
        self._audit_timer = self._clock.schedule(self.config.audit_interval, self._audit)

    def _audit(self) -> None:
        """Reclaim entries orphaned past their deadline (timer lost to a
        crash or a backend bug): every query still gets a verdict.  The
        timer re-arms only while work is outstanding, so an idle engine
        holds no live timers and the event loop can drain."""
        self._audit_timer = None
        for entry in self._inflight.pop_overdue(
            self._clock.now, self.config.audit_grace
        ):
            self.stats.reclaimed_overdue += 1
            self._finish(entry.payload, Verdict.TIMEOUT)
        if len(self._inflight):
            self._arm_audit()

    def _send_attempt(self, q: _EngineQuery, message: Message) -> None:
        if q.done:
            return
        now = self._clock.now
        if now >= q.deadline:
            self._finish(q, Verdict.TIMEOUT)
            return
        if self._bucket is not None and not self._bucket.try_consume(now):
            self.stats.paced += 1
            delay = min(
                self._bucket.next_available(now) - now, q.deadline - now
            )
            q.pace_timer = self._clock.schedule(
                max(delay, 0.0), self._send_attempt, q, message
            )
            return
        self._transmit_now(q, message)

    def _transmit_now(self, q: _EngineQuery, message: Message) -> None:
        now = self._clock.now
        q.sent_at = now
        q.pace_timer = None
        delay = max(0.001, min(self.health.timeout_for(q.server), q.deadline - now))
        self._transmit(message, q.server)
        q.timer = self._clock.schedule(delay, self._on_timeout, q)

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------
    def _on_timeout(self, q: _EngineQuery) -> None:
        if q.done or q.message_id not in self._inflight:
            return
        now = self._clock.now
        self.health.on_transmission_timeout(q.server)
        q.retransmitted = True
        if q.attempts_left <= 0 or now >= q.deadline:
            self.health.on_failure(q.server, now)
            self._finish(q, Verdict.TIMEOUT)
            return
        q.attempts_left -= 1
        q.retransmits += 1
        self.stats.retransmits += 1
        # a fresh id per attempt keeps the answer<->attempt pairing
        # unambiguous (Karn's problem at the id level); TCP mode is
        # preserved so a fallback retry can never downgrade to UDP
        message = Message.query(q.qname, q.qtype, recursion_desired=True)
        message.via_tcp = q.via_tcp
        self._inflight.rekey(q.message_id, message.id)
        q.message_id = message.id
        self._send_attempt(q, message)

    # ------------------------------------------------------------------
    # response path
    # ------------------------------------------------------------------
    def deliver(self, response: Message, src: str) -> bool:
        """Match a response to its in-flight query; False if unmatched."""
        entry = self._inflight.get(response.id)
        if entry is None or entry.payload.server != src or entry.payload.done:
            self.stats.unmatched += 1
            return False
        q = entry.payload
        now = self._clock.now
        if (
            response.is_truncated
            and not response.via_tcp
            and self.config.tcp_fallback
            and not q.via_tcp
        ):
            # EDNS-1232 truncation: retry the same question over TCP
            self.stats.tc_fallbacks += 1
            self._cancel_timers(q)
            q.via_tcp = True
            q.retransmitted = True  # Karn: the eventual RTT sample is tainted
            message = Message.query(q.qname, q.qtype, recursion_desired=True)
            message.via_tcp = True
            self._inflight.rekey(q.message_id, message.id)
            q.message_id = message.id
            self._send_attempt(q, message)
            return True
        self.health.on_success(q.server, now - q.sent_at, now, q.retransmitted)
        self._finish(q, Verdict.ANSWERED, response, rtt=now - q.sent_at)
        return True

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _cancel_timers(self, q: _EngineQuery) -> None:
        if q.timer is not None:
            q.timer.cancel()
            q.timer = None
        if q.pace_timer is not None:
            q.pace_timer.cancel()
            q.pace_timer = None

    def _finish(
        self,
        q: _EngineQuery,
        verdict: Verdict,
        response: Optional[Message] = None,
        rtt: Optional[float] = None,
    ) -> None:
        if q.done:
            return
        q.done = True
        self._cancel_timers(q)
        self._inflight.complete(q.message_id)
        rcode = ""
        if verdict is Verdict.ANSWERED:
            self.stats.answered += 1
            if response is not None:
                rcode = response.rcode.name
                self.stats.rcodes[rcode] = self.stats.rcodes.get(rcode, 0) + 1
        elif verdict is Verdict.TIMEOUT:
            self.stats.timeouts += 1
        else:
            self.stats.shed += 1
        if q.callback is not None:
            q.callback(Outcome(
                verdict, str(q.qname), rcode, response, rtt,
                q.retransmits, q.via_tcp,
            ))

    # ------------------------------------------------------------------
    # liveness
    # ------------------------------------------------------------------
    @property
    def inflight_depth(self) -> int:
        return len(self._inflight)

    def liveness_violations(self, grace: float = 1.0) -> List[str]:
        """Queries past deadline + grace with no verdict -- must be empty."""
        return [
            f"{entry.payload.qname} (deadline {entry.deadline:.3f})"
            for entry in self._inflight.overdue(self._clock.now, grace)
        ]


class EngineClient(Node):
    """A workload source driving a resolver through a :class:`QueryEngine`.

    Sends exactly ``total`` queries at seeded inter-arrival gaps (count-
    based, so same-seed runs issue identical workloads on any backend),
    then idles; :attr:`finished` flips once every query has a verdict.

    Queries fire at *absolute nominal times* -- the cumulative sum of
    the seeded gap draws, scheduled via ``schedule_at`` against the
    client's start epoch -- rather than gap-relative, so wall-clock
    drift on a real backend cannot accumulate across a run.  Each
    verdict is recorded in :attr:`samples` against its nominal send
    time: a ``(nominal, verdict, rcode)`` triple that is a pure function
    of the seed on any backend, which is what lets the recovery-SLO
    auditor segment runs into windows byte-identically across reruns.
    """

    def __init__(
        self,
        address: str,
        resolver: str,
        make_name: Callable[[int], Name],
        rate: float,
        total: int,
        config: Optional[EngineConfig] = None,
        qtype: RRType = RRType.A,
    ) -> None:
        super().__init__(address)
        self._resolver = resolver
        self._make_name = make_name
        self._gap = 1.0 / rate
        self._total = total
        self._config = config
        self._qtype = qtype
        self._sent = 0
        self._completed = 0
        self._epoch = 0.0
        self._cursor = 0.0
        self.engine: Optional[QueryEngine] = None
        self.verdicts: Dict[str, int] = {}
        self.rcodes: Dict[str, int] = {}
        #: (nominal send time, verdict value, rcode) per completed query
        self.samples: List[Tuple[float, str, str]] = []

    def start(self) -> None:
        assert self.sim is not None, f"{self.address} is not attached"
        self.engine = QueryEngine(self.sim, self._transmit, self._config)
        self._epoch = self.sim.now
        self._cursor = 0.0
        self._schedule_next()

    def _next_gap(self) -> float:
        jitter = self.sim.rng(f"client.{self.address}.gaps").uniform(0.6, 1.4)
        return self._gap * jitter

    def _schedule_next(self) -> None:
        self._cursor += self._next_gap()
        self.sim.schedule_at(self._epoch + self._cursor, self._fire)

    def _fire(self) -> None:
        if not self.up or self._sent >= self._total:
            return
        nominal = self._cursor
        qname = self._make_name(self._sent)
        self._sent += 1
        assert self.engine is not None
        self.engine.lookup(
            qname, self._qtype, self._resolver,
            lambda outcome: self._on_outcome(outcome, nominal),
        )
        if self._sent < self._total:
            self._schedule_next()

    def _transmit(self, message: Message, server: str) -> None:
        self.send(server, message)

    def _on_outcome(self, outcome: Outcome, nominal: float = 0.0) -> None:
        self._completed += 1
        key = outcome.verdict.value
        self.verdicts[key] = self.verdicts.get(key, 0) + 1
        if outcome.rcode:
            self.rcodes[outcome.rcode] = self.rcodes.get(outcome.rcode, 0) + 1
        self.samples.append((nominal, key, outcome.rcode))

    def receive(self, message: Message, src: str) -> None:
        if message.is_response and self.engine is not None:
            self.engine.deliver(message, src)

    @property
    def sent(self) -> int:
        return self._sent

    @property
    def finished(self) -> bool:
        return self._sent >= self._total and self._completed >= self._sent
