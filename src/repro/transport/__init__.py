"""Pluggable transport backends (ROADMAP item 3: sockets, not just sims).

The reproduction's control code -- the recursive resolver, the DCC shim,
MOPI-FQ, policing, the health machinery -- is written against two small
duck-typed protocols:

- a **clock** (``now``, ``rng``, ``schedule``/``schedule_at``/
  ``call_soon`` returning cancellable handles), historically provided by
  :class:`repro.netsim.sim.Simulator`;
- a **fabric** (``attach``/``send``/``node``/``stats``), historically
  provided by :class:`repro.netsim.link.Network`.

This package names those protocols (:mod:`repro.transport.base`) and
adds a second implementation of each over real asyncio UDP sockets
(:mod:`repro.transport.udp`), plus a fault-injecting UDP proxy
(:mod:`repro.transport.chaosproxy`) and a wire-level DNS query engine
with RFC 6298 retransmission, pacing, and bounded-in-flight shedding
(:mod:`repro.transport.engine`).  The same server/dcc modules drive both
backends byte-for-byte -- there is no backend conditional anywhere in
them, which is the point: the shim architecture is proven on sockets,
not simulated.
"""

from repro.transport.base import (
    Clock,
    Fabric,
    InflightTable,
    TimerHandle,
    TransportBackend,
)
from repro.transport.simnet import VirtualBackend

__all__ = [
    "Clock",
    "Fabric",
    "InflightTable",
    "TimerHandle",
    "TransportBackend",
    "VirtualBackend",
]
