"""Virtual-time backend: the existing netsim simulator as a transport.

This is deliberately a *thin* bundle, not a wrapper: the simulator and
network objects are exposed as-is, so every experiment that predates
the transport package keeps byte-identical behaviour (the selfcheck
digest is part of the acceptance criteria for any change here).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.netsim.link import Network
from repro.netsim.sim import Simulator


class VirtualBackend:
    """The (Simulator, Network) pair behind every figure in the repo."""

    def __init__(
        self,
        seed: int = 0,
        network: Optional[Network] = None,
        sanitize: bool = False,
    ) -> None:
        self.sim = Simulator(seed=seed, sanitize=sanitize)
        self.net = network if network is not None else Network(self.sim)

    @property
    def clock(self) -> Simulator:
        return self.sim

    @property
    def fabric(self) -> Network:
        return self.net

    def attach(self, node: Any) -> None:
        self.net.attach(node)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        self.sim.run(until=until, max_events=max_events)
        return self.sim.events_processed
