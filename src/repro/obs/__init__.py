"""repro.obs -- the unified observability subsystem.

One facade (:class:`Observability`) bundles the three pillars:

- :mod:`repro.obs.metrics` -- counters, gauges, log-bucketed histograms,
  and periodic time-series sampling on the virtual clock;
- :mod:`repro.obs.spans` -- per-query trace spans forming one causal
  tree per client request;
- :mod:`repro.obs.sketch` -- Space-Saving heavy-hitter sketches over
  per-client query/NXDOMAIN/byte streams.

Exporters live in :mod:`repro.obs.export` (JSONL metrics, Chrome
trace-event JSON for Perfetto, terminal summaries).

**Zero overhead when off.**  Observability defaults to *disabled*: every
instrumented object carries :data:`NULL_OBS`, a process-wide no-op
singleton whose ``enabled`` class attribute is ``False`` -- the same
pattern SimSan uses.  Hot paths guard their instrumentation with a
single ``if self.obs.enabled:`` attribute test; everything else calls
the no-op methods directly.  Experiments opt in by putting an
:class:`ObsConfig` on their ``ScenarioConfig``.

**Never perturbs the simulation.**  The facade schedules no events,
draws no randomness, and sends no messages; its sampler piggybacks on
the simulator's own clock advances (``Simulator.obs_tick``).  The
determinism guard test proves the selfcheck event-trace digest is
byte-identical with observability on or off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Protocol

from repro.obs.metrics import (
    DEFAULT_SIZE_BOUNDS,
    DEFAULT_TIME_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.sketch import SpaceSaving
from repro.obs.spans import NO_PARENT, Tracer


class SupportsObsTick(Protocol):
    """Anything with an ``obs_tick`` clock-advance hook slot.

    Structurally matches :class:`repro.netsim.sim.Simulator`; a Protocol
    keeps ``obs`` below ``netsim`` in the layering contract (reprolint
    R6) instead of importing the simulator for one annotation.
    """

    obs_tick: Optional[Callable[[float], None]]


__all__ = [
    "ObsConfig",
    "Observability",
    "NullObservability",
    "NULL_OBS",
    "NO_PARENT",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpaceSaving",
    "Tracer",
    "DEFAULT_TIME_BOUNDS",
    "DEFAULT_SIZE_BOUNDS",
]


@dataclass(frozen=True)
class ObsConfig:
    """Knobs for one scenario's observability session."""

    #: virtual seconds between time-series snapshots
    sample_interval: float = 1.0
    #: record per-query trace spans (the dominant memory cost)
    trace_spans: bool = True
    #: counters per heavy-hitter sketch
    heavy_hitter_k: int = 32
    #: span/instant memory cap (overflow is dropped and counted)
    max_spans: int = 200_000


class NullObservability:
    """The disabled facade: every operation is a no-op.

    Doubles as the interface definition -- :class:`Observability`
    overrides each method.  Kept free of per-call allocation so leaving
    instrumentation un-guarded on warm (but not hot) paths costs one
    dynamic dispatch and nothing else.
    """

    enabled = False

    # -- spans ---------------------------------------------------------
    def begin(
        self, name: str, track: str, now: float, parent: int = NO_PARENT, **args: Any
    ) -> int:
        return NO_PARENT

    def end(self, span_id: int, now: float, **args: Any) -> None:
        pass

    def annotate(self, span_id: int, **args: Any) -> None:
        pass

    def instant(self, name: str, track: str, now: float, **args: Any) -> None:
        pass

    # -- metrics -------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def observe_size(self, name: str, value: float) -> None:
        pass

    # -- heavy hitters -------------------------------------------------
    def client_query(self, client: str, wire_bytes: int) -> None:
        pass

    def client_nxdomain(self, client: str) -> None:
        pass

    # -- cross-layer span linkage --------------------------------------
    def note_query_span(self, message_id: int, span_id: int) -> None:
        pass

    def query_span(self, message_id: int) -> int:
        return NO_PARENT

    def forget_query_span(self, message_id: int) -> None:
        pass


#: the process-wide disabled facade every instrumented object defaults to
NULL_OBS = NullObservability()


class Observability(NullObservability):
    """The live facade: one per opted-in scenario."""

    enabled = True

    def __init__(self, config: Optional[ObsConfig] = None) -> None:
        self.config = config if config is not None else ObsConfig()
        self.metrics = MetricsRegistry(sample_interval=self.config.sample_interval)
        self.tracer = Tracer(max_spans=self.config.max_spans)
        self._trace_spans = self.config.trace_spans
        k = self.config.heavy_hitter_k
        self.hh_queries = SpaceSaving(k)
        self.hh_nxdomain = SpaceSaving(k)
        self.hh_bytes = SpaceSaving(k)
        #: upstream-query message id -> span handle, linking the layers
        #: a query crosses (resolution -> MOPI-FQ -> authoritative)
        self._query_spans: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, sim: SupportsObsTick) -> None:
        """Drive the time-series sampler from the simulator's clock.

        Installs :meth:`MetricsRegistry.on_advance` as the simulator's
        ``obs_tick`` callback -- invoked whenever the clock advances,
        adding zero events to the heap.
        """
        sim.obs_tick = self.metrics.on_advance

    def finish(self, now: float) -> None:
        """End-of-run flush: close abandoned spans, emit final samples."""
        self.metrics.on_advance(now)
        self.tracer.close_open_spans(now)

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    def begin(
        self, name: str, track: str, now: float, parent: int = NO_PARENT, **args: Any
    ) -> int:
        if not self._trace_spans:
            return NO_PARENT
        return self.tracer.begin(name, track, now, parent, **args)

    def end(self, span_id: int, now: float, **args: Any) -> None:
        if span_id:
            self.tracer.end(span_id, now, **args)

    def annotate(self, span_id: int, **args: Any) -> None:
        if span_id:
            self.tracer.annotate(span_id, **args)

    def instant(self, name: str, track: str, now: float, **args: Any) -> None:
        if self._trace_spans:
            self.tracer.instant(name, track, now, **args)

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0) -> None:
        self.metrics.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.metrics.histogram(name).observe(value)

    def observe_size(self, name: str, value: float) -> None:
        self.metrics.histogram(name, DEFAULT_SIZE_BOUNDS).observe(value)

    # ------------------------------------------------------------------
    # heavy hitters
    # ------------------------------------------------------------------
    def client_query(self, client: str, wire_bytes: int) -> None:
        self.hh_queries.offer(client)
        self.hh_bytes.offer(client, float(wire_bytes))

    def client_nxdomain(self, client: str) -> None:
        self.hh_nxdomain.offer(client)

    # ------------------------------------------------------------------
    # cross-layer span linkage
    # ------------------------------------------------------------------
    def note_query_span(self, message_id: int, span_id: int) -> None:
        if span_id:
            self._query_spans[message_id] = span_id

    def query_span(self, message_id: int) -> int:
        return self._query_spans.get(message_id, NO_PARENT)

    def forget_query_span(self, message_id: int) -> None:
        self._query_spans.pop(message_id, None)
