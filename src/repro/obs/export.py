"""Exporters: metrics -> JSONL, spans -> Chrome trace-event JSON.

Two on-disk formats plus terminal renderers:

- **JSONL metrics** (:func:`metrics_jsonl`): one JSON object per line --
  final counter/gauge values, histogram summaries, then the periodic
  time-series samples.  Line order is deterministic (kind, then name,
  then time) so exports diff cleanly across runs.
- **Chrome trace-event JSON** (:func:`chrome_trace`): the ``traceEvents``
  format that Perfetto and chrome://tracing load directly.  Spans become
  complete ``"X"`` events, instants become ``"i"`` events; each
  simulated entity is one thread (track) of a single process.
  Timestamps are virtual microseconds, nudged by 1 ns per collision so
  every track's timeline is strictly increasing -- some trace tooling
  (and our own validator) rejects ties.

:func:`validate_chrome_trace` is the schema gate CI runs on exported
traces: structural checks, strict per-track ``ts`` monotonicity, and
``B``/``E`` pairing (our exporter only emits ``X``/``i``/``M``, but the
validator accepts the full begin/end vocabulary so it can vet traces
from other producers too).

Everything here returns strings or plain data; printing and file I/O
belong to the CLI (reprolint R5).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.sketch import SpaceSaving
from repro.obs.spans import NO_PARENT, OPEN, SpanRecord, Tracer

#: one trace process holds all simulation tracks
TRACE_PID = 1

#: microseconds; chrome trace ts must strictly increase per track
_US = 1e6
_TS_NUDGE = 0.001


# ----------------------------------------------------------------------
# metrics -> JSONL
# ----------------------------------------------------------------------
def metrics_jsonl(metrics: MetricsRegistry) -> str:
    """Serialize a registry as JSON Lines (one object per line)."""
    lines: List[str] = []
    for name, value in metrics.counters().items():
        lines.append(_dumps({"kind": "counter", "name": name, "value": value}))
    for name, value in metrics.gauges().items():
        lines.append(_dumps({"kind": "gauge", "name": name, "value": value}))
    for name, histogram in metrics.histograms().items():
        lines.append(
            _dumps(
                {
                    "kind": "histogram",
                    "name": name,
                    "count": histogram.count,
                    "sum": histogram.sum,
                    "mean": histogram.mean(),
                    "p50": histogram.quantile(0.50),
                    "p99": histogram.quantile(0.99),
                    "bounds": list(histogram.bounds),
                    "buckets": list(histogram.buckets),
                }
            )
        )
    for sample in metrics.samples:
        lines.append(
            _dumps(
                {
                    "kind": "sample",
                    "time": sample.time,
                    "name": sample.name,
                    "value": sample.value,
                }
            )
        )
    return "\n".join(lines) + ("\n" if lines else "")


def _dumps(obj: Dict[str, Any]) -> str:
    return json.dumps(obj, separators=(",", ":"), sort_keys=False)


def canonical_json(doc: Any) -> str:
    """Byte-stable JSON for determinism gates: sorted keys, no
    whitespace drift, newline-terminated.

    Two runs that produce equal data structures produce *identical
    files* through this function -- the property the chaos CLI's
    ``--check-against`` comparison (and any future digest gate) relies
    on.  Inputs must be plain JSON data (dict/list/str/num/bool/None);
    non-finite floats are rejected rather than serialized as the
    non-standard ``NaN``/``Infinity`` tokens.
    """
    return json.dumps(doc, separators=(",", ":"), sort_keys=True, allow_nan=False) + "\n"


# ----------------------------------------------------------------------
# spans -> Chrome trace-event JSON
# ----------------------------------------------------------------------
def chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """Build a Chrome trace-event document from the recorded spans.

    Tracks map to thread ids in first-appearance order; thread-name
    metadata events label them.  Open spans are skipped (callers should
    :meth:`~repro.obs.spans.Tracer.close_open_spans` first).
    """
    tids: Dict[str, int] = {}
    events: List[Dict[str, Any]] = []

    def tid_for(track: str) -> int:
        tid = tids.get(track)
        if tid is None:
            tid = len(tids) + 1
            tids[track] = tid
        return tid

    timed: List[Tuple[float, int, Dict[str, Any]]] = []
    order = 0
    for span in tracer.spans:
        if span.end == OPEN:
            continue
        args = dict(span.args)
        args["span_id"] = span.span_id
        if span.parent_id != NO_PARENT:
            args["parent_id"] = span.parent_id
        timed.append(
            (
                span.start * _US,
                order,
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": span.start * _US,
                    "dur": max(span.end - span.start, 0.0) * _US,
                    "pid": TRACE_PID,
                    "tid": tid_for(span.track),
                    "cat": span.name.split(".")[0],
                    "args": args,
                },
            )
        )
        order += 1
    for mark in tracer.instants:
        timed.append(
            (
                mark.time * _US,
                order,
                {
                    "name": mark.name,
                    "ph": "i",
                    "ts": mark.time * _US,
                    "pid": TRACE_PID,
                    "tid": tid_for(mark.track),
                    "s": "t",
                    "cat": mark.name.split(".")[0],
                    "args": dict(mark.args),
                },
            )
        )
        order += 1

    timed.sort(key=_timed_key)
    last_ts_per_tid: Dict[int, float] = {}
    for _, _, event in timed:
        tid = event["tid"]
        ts = event["ts"]
        previous = last_ts_per_tid.get(tid)
        if previous is not None and ts <= previous:
            ts = previous + _TS_NUDGE
            event["ts"] = ts
        last_ts_per_tid[tid] = ts
        events.append(event)

    metadata: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": TRACE_PID,
            "args": {"name": "repro-sim"},
        }
    ]
    for track, tid in tids.items():
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": tid,
                "args": {"name": track},
            }
        )
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "clock": "virtual-us"},
    }


def _timed_key(item: Tuple[float, int, Dict[str, Any]]) -> Tuple[float, int]:
    return (item[0], item[1])


def validate_chrome_trace(doc: Dict[str, Any]) -> List[str]:
    """Schema problems in a trace-event document; empty when valid.

    Checks: ``traceEvents`` list of objects with required fields per
    phase; strictly increasing ``ts`` on every (pid, tid) track; every
    ``B`` matched by a later ``E`` on the same track (complete ``X``
    events carry their own duration and need no pairing).
    """
    problems: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    last_ts: Dict[Tuple[int, int], float] = {}
    begin_depth: Dict[Tuple[int, int], int] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event[{index}] is not an object")
            continue
        phase = event.get("ph")
        if phase is None or "name" not in event or "pid" not in event:
            problems.append(f"event[{index}] missing ph/name/pid")
            continue
        if phase == "M":
            continue
        if "ts" not in event or "tid" not in event:
            problems.append(f"event[{index}] ({phase}) missing ts/tid")
            continue
        key = (event["pid"], event["tid"])
        ts = float(event["ts"])
        previous = last_ts.get(key)
        if previous is not None and ts <= previous:
            problems.append(
                f"event[{index}] ts {ts} not strictly increasing on track "
                f"pid={key[0]} tid={key[1]} (previous {previous})"
            )
        last_ts[key] = ts
        if phase == "X":
            if "dur" not in event or float(event["dur"]) < 0:
                problems.append(f"event[{index}] X missing non-negative dur")
        elif phase == "B":
            begin_depth[key] = begin_depth.get(key, 0) + 1
        elif phase == "E":
            depth = begin_depth.get(key, 0)
            if depth <= 0:
                problems.append(f"event[{index}] E without matching B on track {key}")
            else:
                begin_depth[key] = depth - 1
        elif phase not in ("i", "I", "C", "s", "t", "f"):
            problems.append(f"event[{index}] unknown phase {phase!r}")
    for key, depth in sorted(begin_depth.items()):
        if depth:
            problems.append(f"{depth} unmatched B event(s) on track pid={key[0]} tid={key[1]}")
    return problems


# ----------------------------------------------------------------------
# terminal renderers
# ----------------------------------------------------------------------
def render_span_tree(tracer: Tracer, root_id: int) -> str:
    """ASCII rendering of one span tree, children in start order."""
    kids: Dict[int, List[SpanRecord]] = {}
    for span in tracer.spans:
        kids.setdefault(span.parent_id, []).append(span)
    for siblings in kids.values():
        siblings.sort(key=_span_order)

    lines: List[str] = []
    root = tracer.get(root_id)
    if root is None:
        return f"(no span #{root_id})"

    stack: List[Tuple[SpanRecord, int]] = [(root, 0)]
    while stack:
        span, depth = stack.pop()
        duration_ms = span.duration * 1e3
        detail = " ".join(
            f"{key}={value}" for key, value in sorted(span.args.items())
        )
        lines.append(
            f"{'  ' * depth}{span.name} [{span.track}] "
            f"t={span.start:.6f}s dur={duration_ms:.3f}ms"
            + (f" {detail}" if detail else "")
        )
        for child in reversed(kids.get(span.span_id, [])):
            stack.append((child, depth + 1))
    return "\n".join(lines)


def _span_order(span: SpanRecord) -> Tuple[float, int]:
    return (span.start, span.span_id)


def find_full_query_root(
    tracer: Tracer,
    required_prefixes: Tuple[str, ...] = ("client", "resolver", "mopifq", "auth"),
) -> Optional[int]:
    """The first root span whose tree touches every required track kind
    (track names are ``kind:address``) -- the acceptance probe for "one
    query's full life crosses client -> resolver -> MOPI-FQ -> auth"."""
    for root in tracer.roots():
        kinds: List[str] = []
        for track in tracer.tree_tracks(root.span_id):
            kind = track.split(":", 1)[0]
            if kind not in kinds:
                kinds.append(kind)
        if all(prefix in kinds for prefix in required_prefixes):
            return root.span_id
    return None


def heavy_hitter_rows(sketch: SpaceSaving, top: int = 10) -> List[List[str]]:
    """Table rows (key, estimate, max error) for a sketch's top-N."""
    rows: List[List[str]] = []
    for hitter in sketch.top(top):
        rows.append([hitter.key, f"{hitter.count:.0f}", f"±{hitter.error:.0f}"])
    return rows
