"""Per-query trace spans: one causal tree per client request.

A *span* is a named interval of virtual time on a *track* (one per
simulated entity: ``client:10.1.0.1``, ``resolver:10.0.1.1``,
``mopifq:10.0.1.1``, ``auth:10.0.0.2``, ...).  Spans nest through
``parent_id``: the root span is minted when a client request reaches
resolver ingress, resolution tasks hang off it, upstream queries hang
off their task, MOPI-FQ queue waits hang off the upstream query, and so
on -- so one query's full life (queue wait, RTO backoffs, cache hits,
conviction events) reads as one tree.

*Instants* are zero-duration marks on a track (retransmit fired, breaker
opened, policing verdict) that annotate the tree without nesting.

The tracer is append-only and pure: it never schedules events, draws
randomness, or touches the network, so enabling it cannot perturb the
simulation (the determinism guard test pins this).  Memory is bounded by
``max_spans``; overflow drops new spans and counts them.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional

#: parent_id of a root span / sentinel "no parent"
NO_PARENT = 0

#: end time of a span that has not finished yet
OPEN = -1.0


class SpanRecord:
    """One interval on a track.  ``end`` is :data:`OPEN` until closed."""

    __slots__ = ("span_id", "parent_id", "name", "track", "start", "end", "args")

    def __init__(
        self,
        span_id: int,
        parent_id: int,
        name: str,
        track: str,
        start: float,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.track = track
        self.start = start
        self.end = OPEN
        self.args: Dict[str, Any] = {}

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end != OPEN else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        closed = f"{self.end:.6f}" if self.end != OPEN else "open"
        return f"Span#{self.span_id}({self.name}@{self.track} {self.start:.6f}..{closed})"


class InstantRecord:
    """A zero-duration mark on a track."""

    __slots__ = ("name", "track", "time", "args")

    def __init__(self, name: str, track: str, time: float, args: Dict[str, Any]) -> None:
        self.name = name
        self.track = track
        self.time = time
        self.args = args


class Tracer:
    """Append-only span/instant store with integer span handles.

    Handles are plain ints so instrumented objects can stash them in
    ``__slots__`` dataclasses without importing obs types; handle 0
    (:data:`NO_PARENT`) is the universal "no span" value the no-op
    facade returns, and every mutator ignores it.
    """

    def __init__(self, max_spans: int = 200_000) -> None:
        self.max_spans = max_spans
        self.spans: List[SpanRecord] = []
        self.instants: List[InstantRecord] = []
        self.dropped = 0
        self._by_id: Dict[int, SpanRecord] = {}
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def begin(
        self,
        name: str,
        track: str,
        now: float,
        parent: int = NO_PARENT,
        **args: Any,
    ) -> int:
        """Open a span; returns its handle (0 when over ``max_spans``)."""
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return NO_PARENT
        span = SpanRecord(next(self._ids), parent, name, track, now)
        if args:
            span.args.update(args)
        self.spans.append(span)
        self._by_id[span.span_id] = span
        return span.span_id

    def end(self, span_id: int, now: float, **args: Any) -> None:
        """Close a span.  Unknown/zero handles are ignored (the span may
        have been dropped by the overflow cap)."""
        span = self._by_id.get(span_id)
        if span is None or span.end != OPEN:
            return
        span.end = now
        if args:
            span.args.update(args)

    def annotate(self, span_id: int, **args: Any) -> None:
        span = self._by_id.get(span_id)
        if span is not None:
            span.args.update(args)

    def instant(self, name: str, track: str, now: float, **args: Any) -> None:
        if len(self.instants) >= self.max_spans:
            self.dropped += 1
            return
        self.instants.append(InstantRecord(name, track, now, args))

    def close_open_spans(self, now: float) -> int:
        """Close every still-open span at ``now`` (end-of-run flush for
        queries abandoned mid-flight).  Returns how many were closed."""
        closed = 0
        for span in self.spans:
            if span.end == OPEN:
                span.end = now
                span.args.setdefault("flushed", True)
                closed += 1
        return closed

    # ------------------------------------------------------------------
    # tree queries
    # ------------------------------------------------------------------
    def get(self, span_id: int) -> Optional[SpanRecord]:
        return self._by_id.get(span_id)

    def children(self, span_id: int) -> List[SpanRecord]:
        return [s for s in self.spans if s.parent_id == span_id]

    def roots(self) -> List[SpanRecord]:
        return [s for s in self.spans if s.parent_id == NO_PARENT]

    def tree_tracks(self, root_id: int) -> List[str]:
        """Distinct tracks touched by the tree under ``root_id``, in
        first-visit (depth-first) order."""
        tracks: List[str] = []
        kids: Dict[int, List[SpanRecord]] = {}
        for span in self.spans:
            kids.setdefault(span.parent_id, []).append(span)
        stack = [root_id]
        while stack:
            node_id = stack.pop()
            node = self._by_id.get(node_id)
            if node is not None and node.track not in tracks:
                tracks.append(node.track)
            for child in reversed(kids.get(node_id, [])):
                stack.append(child.span_id)
        return tracks


def validate_span_tree(tracer: Tracer) -> List[str]:
    """Well-formedness problems, empty when the span set is sound.

    Checks: every span closed with ``end >= start``; every non-root
    parent exists; every parent opens no later than its child (causality
    in virtual time).
    """
    problems: List[str] = []
    for span in tracer.spans:
        if span.end == OPEN:
            problems.append(f"span #{span.span_id} {span.name!r} never closed")
        elif span.end < span.start:
            problems.append(
                f"span #{span.span_id} {span.name!r} ends before it starts "
                f"({span.end:.9f} < {span.start:.9f})"
            )
        if span.parent_id != NO_PARENT:
            parent = tracer.get(span.parent_id)
            if parent is None:
                problems.append(
                    f"span #{span.span_id} {span.name!r} has unknown parent "
                    f"#{span.parent_id}"
                )
            elif parent.start > span.start:
                problems.append(
                    f"span #{span.span_id} {span.name!r} starts before its parent "
                    f"#{parent.span_id} ({span.start:.9f} < {parent.start:.9f})"
                )
    return problems
