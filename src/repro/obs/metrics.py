"""Deterministic metrics registry: counters, gauges, histograms, series.

Three primitive kinds plus periodic time-series sampling:

- :class:`Counter` -- monotone event tally (``inc``).
- :class:`Gauge` -- last-write-wins instantaneous level (``set``).
- :class:`Histogram` -- value distribution over fixed log-spaced bucket
  bounds, so percentile summaries are comparable across runs without
  any data-dependent bucketing.

The registry samples every counter and gauge on a fixed virtual-time
grid.  Sampling is *driven by* scheduler events rather than *being* one:
the simulator invokes :meth:`MetricsRegistry.on_advance` from its run
loop whenever the clock moves, and the registry snapshots any grid
points the clock just crossed.  Nothing here pushes events onto the
heap, draws randomness, or sends messages, which is what keeps the
selfcheck event-trace digest byte-identical with observability on or
off (the determinism guard test pins this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


class Counter:
    """Monotone tally of occurrences (optionally weighted)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Instantaneous level; last write wins."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float) -> None:
        self.value += amount


def log_bounds(lo: float, hi: float, per_decade: int = 4) -> Tuple[float, ...]:
    """Fixed log-spaced bucket upper bounds from ``lo`` to ``hi``.

    ``per_decade`` bounds per factor of 10; the sequence always starts at
    ``lo`` and ends at the first bound >= ``hi``.  Bounds are computed
    from integer exponents (not cumulative multiplication) so the edges
    are bit-identical regardless of how many buckets precede them.
    """
    if lo <= 0 or hi <= lo:
        raise ValueError(f"need 0 < lo < hi, got lo={lo} hi={hi}")
    ratio = 10.0 ** (1.0 / per_decade)
    bounds: List[float] = []
    exponent = 0
    while True:
        bound = lo * ratio**exponent
        bounds.append(bound)
        if bound >= hi:
            break
        exponent += 1
    return tuple(bounds)


#: default bounds for sim-time durations: 10 us .. 100 s, 4 per decade
DEFAULT_TIME_BOUNDS = log_bounds(1e-5, 100.0)

#: default bounds for message sizes: 16 B .. 64 KiB, 4 per decade
DEFAULT_SIZE_BOUNDS = log_bounds(16.0, 65536.0)


class Histogram:
    """Counts of observations per fixed bucket.

    ``bounds[i]`` is the *inclusive upper* edge of bucket ``i``; one
    overflow bucket catches everything beyond the last bound.  Sum and
    count ride along so mean and total are exact.
    """

    __slots__ = ("name", "bounds", "buckets", "count", "sum")

    def __init__(self, name: str, bounds: Tuple[float, ...] = DEFAULT_TIME_BOUNDS) -> None:
        self.name = name
        self.bounds = bounds
        self.buckets = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.buckets[self._bucket_index(value)] += 1
        self.count += 1
        self.sum += value

    def _bucket_index(self, value: float) -> int:
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def quantile(self, q: float) -> float:
        """Approximate q-quantile: the upper edge of the bucket holding
        the q-th observation (the last finite bound for overflow)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile wants q in [0,1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.buckets):
            seen += bucket_count
            if seen >= rank and bucket_count:
                return self.bounds[min(index, len(self.bounds) - 1)]
        return self.bounds[-1]

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


@dataclass(frozen=True)
class Sample:
    """One time-series point: metric value at a virtual-time grid tick."""

    time: float
    name: str
    value: float


class MetricsRegistry:
    """Namespace of metrics plus the grid sampler.

    All accessors are get-or-create so instrumentation sites never need
    registration boilerplate; a name maps to exactly one instrument kind
    (mixing kinds under one name raises).
    """

    def __init__(self, sample_interval: float = 1.0) -> None:
        if sample_interval <= 0:
            raise ValueError(f"sample_interval must be > 0, got {sample_interval}")
        self.sample_interval = sample_interval
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self.samples: List[Sample] = []
        #: index of the next grid tick to snapshot (tick i = i * interval)
        self._next_tick = 0

    # ------------------------------------------------------------------
    # instruments
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._claim(name)
            instrument = Counter(name)
            self._counters[name] = instrument
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            self._claim(name)
            instrument = Gauge(name)
            self._gauges[name] = instrument
        return instrument

    def histogram(
        self, name: str, bounds: Optional[Tuple[float, ...]] = None
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            self._claim(name)
            instrument = Histogram(name, bounds if bounds is not None else DEFAULT_TIME_BOUNDS)
            self._histograms[name] = instrument
        return instrument

    def _claim(self, name: str) -> None:
        if name in self._counters or name in self._gauges or name in self._histograms:
            raise ValueError(f"metric name {name!r} already registered as another kind")

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def on_advance(self, now: float) -> None:
        """Snapshot every grid tick the clock has crossed.

        Called by the simulator run loop after the clock advances; a
        burst of events at one instant costs one comparison each, and a
        long quiet gap emits all the ticks it spans at once (each tick's
        snapshot repeats the values in force during the gap).
        """
        while self._next_tick * self.sample_interval <= now:
            tick_time = self._next_tick * self.sample_interval
            self._snapshot(tick_time)
            self._next_tick += 1

    def _snapshot(self, tick_time: float) -> None:
        for name, counter in self._counters.items():
            self.samples.append(Sample(tick_time, name, counter.value))
        for name, gauge in self._gauges.items():
            self.samples.append(Sample(tick_time, name, gauge.value))

    # ------------------------------------------------------------------
    # export views
    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, float]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def gauges(self) -> Dict[str, float]:
        return {name: g.value for name, g in sorted(self._gauges.items())}

    def histograms(self) -> Dict[str, Histogram]:
        return dict(sorted(self._histograms.items()))
