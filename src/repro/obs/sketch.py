"""Space-Saving heavy-hitter sketches (Metwally et al., ICDT 2005).

The anomaly monitor and the observability facade both need "who are the
top-k talkers?" over per-client query/NXDOMAIN/byte streams.  Exact
per-client maps are O(clients) memory -- fine in the simulator, fatal at
the production scale the ROADMAP targets, where a resolver fronts
millions of stub addresses.  Space-Saving answers top-k queries with
O(k) counters and a hard error guarantee: after n stream items, every
reported count overestimates the true count by at most n/k, and any item
whose true count exceeds n/k is guaranteed to be monitored.

The implementation keeps a dict of monitored keys plus each counter's
maximum possible overestimation (the ``error`` field).  Eviction picks
the minimum-count counter; ties break on insertion order (dict order),
which keeps runs deterministic -- a requirement every structure in this
repo shares (reprolint R3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class HeavyHitter:
    """One reported top-k entry.

    ``count`` may overestimate the true frequency by at most ``error``;
    the true count lies in ``[count - error, count]``.
    """

    key: str
    count: float
    error: float


class _Counter:
    __slots__ = ("count", "error")

    def __init__(self, count: float, error: float) -> None:
        self.count = count
        self.error = error


class SpaceSaving:
    """Top-k frequency sketch over a weighted item stream.

    ``offer(key, weight)`` folds one observation in; ``top(n)`` reports
    the heaviest keys.  ``k`` bounds memory: at most ``k`` keys are
    monitored at any instant.
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"SpaceSaving needs k >= 1, got {k}")
        self.k = k
        self._counters: Dict[str, _Counter] = {}
        #: total stream weight folded in (the n of the n/k bound)
        self.total_weight = 0.0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._counters)

    def offer(self, key: str, weight: float = 1.0) -> None:
        """Fold one observation of ``key`` into the sketch."""
        self.total_weight += weight
        counter = self._counters.get(key)
        if counter is not None:
            counter.count += weight
            return
        if len(self._counters) < self.k:
            self._counters[key] = _Counter(weight, 0.0)
            return
        # Evict the minimum counter; the newcomer inherits its count as
        # its maximum possible overestimation.
        victim_key = ""
        victim: Optional[_Counter] = None
        for candidate_key, candidate in self._counters.items():
            if victim is None or candidate.count < victim.count:
                victim_key = candidate_key
                victim = candidate
        assert victim is not None
        del self._counters[victim_key]
        self._counters[key] = _Counter(victim.count + weight, victim.count)
        self.evictions += 1

    def count(self, key: str) -> float:
        """The monitored (over)estimate for ``key``; 0 when unmonitored."""
        counter = self._counters.get(key)
        return counter.count if counter is not None else 0.0

    def error_bound(self) -> float:
        """Worst-case overestimation of any reported count (n/k)."""
        return self.total_weight / self.k

    def top(self, n: int) -> List[HeavyHitter]:
        """The ``n`` heaviest monitored keys, heaviest first.

        Ties break lexicographically on key so output order is stable
        across runs and interpreters.
        """
        ranked = sorted(
            self._counters.items(), key=_rank_key
        )
        return [
            HeavyHitter(key=key, count=counter.count, error=counter.error)
            for key, counter in ranked[:n]
        ]

    def guaranteed(self, n: int) -> List[HeavyHitter]:
        """Like :meth:`top` but keeps only entries provably in the true
        top-``n``: their lower bound (count - error) must meet or beat
        the (n+1)-th monitored count, the ceiling on anything outside
        the reported set."""
        entries = self.top(len(self._counters))
        if len(entries) <= n:
            return entries
        outside_ceiling = entries[n].count
        return [hh for hh in entries[:n] if hh.count - hh.error >= outside_ceiling]

    def clear(self) -> None:
        self._counters.clear()
        self.total_weight = 0.0
        self.evictions = 0


def _rank_key(item: tuple) -> tuple:
    key, counter = item
    return (-counter.count, key)
