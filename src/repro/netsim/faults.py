"""Scheduled fault injection: link degradation, partitions, crashes.

The paper's evaluation assumes the resolution infrastructure itself
stays healthy while adversarial congestion rages; layered-defense work
on the root DNS shows that the interesting regime is the combination --
defenses operating *through* server loss and reconfiguration.  This
module makes that regime expressible: a :class:`FaultInjector` applies
time-varying faults to a :class:`~repro.netsim.link.Network`:

- **link degradation ramps** -- added loss / latency / jitter between two
  address groups, optionally ramping up over a window before holding at
  peak (a congesting cross-flow, a failing line card);
- **partitions** -- bidirectional message cuts between two address
  groups over a window (a routing blackhole);
- **node outages** -- crash/recover cycles with optional flapping,
  delegating state-loss semantics to each node's ``on_crash`` /
  ``on_recover`` hooks (see :mod:`repro.netsim.node`).

Everything is deterministic: shaping is a pure function of virtual time,
and outage flap jitter draws from the simulator's dedicated
``"faults.outage"`` PRNG stream, so a fault schedule never perturbs the
``network.loss`` / ``network.jitter`` streams' *sequences* -- only which
draws happen, which is itself seed-stable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, List, Optional, Tuple, Union

from repro.netsim.link import LinkSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.link import Network

Addresses = Union[str, Iterable[str]]

FaultSpec = Union["LinkDegradation", "Partition", "NodeOutage"]


def _group(addresses: Addresses) -> FrozenSet[str]:
    if isinstance(addresses, str):
        return frozenset((addresses,))
    return frozenset(addresses)


def _group_list(group: Addresses) -> List[str]:
    """Canonical (sorted) list form of an address group for JSON."""
    return sorted(_group(group))


@dataclass
class LinkDegradation:
    """Added impairment between two address groups over [start, end).

    ``ramp`` seconds after ``start`` the impairment reaches its peak
    (linear ramp; 0 = step).  It clears instantly at ``end``.
    """

    src: Addresses
    dst: Addresses
    start: float
    end: float
    #: peak *added* loss probability (clamped so total stays <= 1)
    loss: float = 0.0
    #: peak added one-way latency, seconds
    latency: float = 0.0
    #: peak added jitter, seconds
    jitter: float = 0.0
    #: seconds from start to peak severity (0 = immediate)
    ramp: float = 0.0
    bidirectional: bool = True

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"degradation window [{self.start}, {self.end}) is empty")
        self.src = _group(self.src)
        self.dst = _group(self.dst)

    def severity(self, now: float) -> float:
        """Impairment fraction in [0, 1] at virtual time ``now``."""
        if not self.start <= now < self.end:
            return 0.0
        if self.ramp <= 0:
            return 1.0
        return min(1.0, (now - self.start) / self.ramp)

    def matches(self, src: str, dst: str) -> bool:
        if src in self.src and dst in self.dst:
            return True
        return self.bidirectional and src in self.dst and dst in self.src

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": "degradation",
            "src": _group_list(self.src),
            "dst": _group_list(self.dst),
            "start": self.start,
            "end": self.end,
            "loss": self.loss,
            "latency": self.latency,
            "jitter": self.jitter,
            "ramp": self.ramp,
            "bidirectional": self.bidirectional,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LinkDegradation":
        fields = {k: v for k, v in data.items() if k != "kind"}
        return cls(**fields)  # type: ignore[arg-type]


@dataclass
class Partition:
    """No messages pass between groups ``a`` and ``b`` during [start, end)."""

    a: Addresses
    b: Addresses
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"partition window [{self.start}, {self.end}) is empty")
        self.a = _group(self.a)
        self.b = _group(self.b)

    def severs(self, src: str, dst: str) -> bool:
        return (src in self.a and dst in self.b) or (src in self.b and dst in self.a)

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": "partition",
            "a": _group_list(self.a),
            "b": _group_list(self.b),
            "start": self.start,
            "end": self.end,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Partition":
        fields = {k: v for k, v in data.items() if k != "kind"}
        return cls(**fields)  # type: ignore[arg-type]


@dataclass
class NodeOutage:
    """Crash ``address`` at ``at`` for ``duration`` seconds, ``flaps`` times.

    With ``flaps > 1`` the crash/recover cycle repeats every ``period``
    seconds (crash-to-crash; default ``2 * duration``), modelling a
    flapping server.  ``jitter`` perturbs each crash and recovery instant
    by up to +/- that many seconds, drawn from the deterministic
    ``"faults.outage"`` stream.
    """

    address: str
    at: float
    duration: float
    flaps: int = 1
    period: Optional[float] = None
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"outage duration must be positive, got {self.duration}")
        if self.flaps < 1:
            raise ValueError(f"flaps must be >= 1, got {self.flaps}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": "outage",
            "address": self.address,
            "at": self.at,
            "duration": self.duration,
            "flaps": self.flaps,
            "period": self.period,
            "jitter": self.jitter,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "NodeOutage":
        fields = {k: v for k, v in data.items() if k != "kind"}
        return cls(**fields)  # type: ignore[arg-type]


#: JSON ``kind`` tag -> fault spec class, for :func:`fault_from_dict`
_FAULT_KINDS = {
    "degradation": LinkDegradation,
    "partition": Partition,
    "outage": NodeOutage,
}


def fault_from_dict(data: Dict[str, object]) -> FaultSpec:
    """Rebuild any fault spec from its :meth:`to_dict` form.

    Round-trips bit-for-bit: groups serialize as sorted lists and
    rebuild as frozensets, so a schedule shrunk to JSON and replayed
    drives the injector identically.
    """
    kind = data.get("kind")
    cls = _FAULT_KINDS.get(str(kind))
    if cls is None:
        raise ValueError(f"unknown fault kind {kind!r}")
    return cls.from_dict(data)


def schedule_to_dicts(faults: Iterable[FaultSpec]) -> List[Dict[str, object]]:
    return [fault.to_dict() for fault in faults]


def schedule_from_dicts(records: Iterable[Dict[str, object]]) -> List[FaultSpec]:
    return [fault_from_dict(record) for record in records]


def outage_period(spec: NodeOutage) -> float:
    """The crash-to-crash period of a flapping outage (default 2x duration)."""
    return spec.period if spec.period is not None else 2.0 * spec.duration


def expand_outage(
    spec: NodeOutage, rng: random.Random, now: float = 0.0
) -> List[Tuple[float, float]]:
    """Concrete ``(crash_at, recover_at)`` pairs for one outage spec.

    This is the single flap-expansion used by both backends: the virtual
    :class:`FaultInjector` and the live orchestrator call it with the
    same ``"faults.outage"`` RNG stream, so a schedule produces the same
    flap instants over real sockets as it does in virtual time.

    Pairs whose recovery slice is empty after clamping to ``now`` are
    *skipped* rather than scheduled: a crash and a recover at the same
    instant is not an outage, and enqueueing both at one timestamp makes
    the node's final up/down state depend on event-queue tie-breaking
    (the flapping edge case SimSan ordering tests pin).  Jitter draws
    still happen for skipped pairs, so the RNG stream's sequence -- and
    every later flap's timing -- is independent of the clamp.
    """
    period = outage_period(spec)
    pairs: List[Tuple[float, float]] = []
    for flap in range(spec.flaps):
        down_at = spec.at + flap * period
        up_at = down_at + spec.duration
        if spec.jitter > 0:
            down_at += rng.uniform(-spec.jitter, spec.jitter)
            up_at = max(down_at + 1e-9, up_at + rng.uniform(-spec.jitter, spec.jitter))
        down_at = max(down_at, now)
        up_at = max(up_at, now)
        if up_at <= down_at:
            continue
        pairs.append((down_at, up_at))
    return pairs


def fault_span(faults: Iterable[FaultSpec]) -> Optional[Tuple[float, float]]:
    """The ``[start, end)`` window covering every fault in a schedule.

    Returns ``None`` for an empty schedule.  Outage end is computed from
    the nominal flap grid (``at + (flaps - 1) * period + duration``);
    jitter is deliberately excluded so window segmentation -- which the
    recovery-SLO auditor and the fuzz recovery oracle both build on --
    is a pure function of the serialized schedule, not of RNG draws.
    """
    start: Optional[float] = None
    end: Optional[float] = None
    for spec in faults:
        if isinstance(spec, NodeOutage):
            s = spec.at
            e = spec.at + (spec.flaps - 1) * outage_period(spec) + spec.duration
        else:
            s = spec.start
            e = spec.end
        start = s if start is None else min(start, s)
        end = e if end is None else max(end, e)
    if start is None or end is None:
        return None
    return (start, end)


@dataclass
class FaultStats:
    crashes: int = 0
    recoveries: int = 0
    #: messages severed by an active partition
    partition_cuts: int = 0
    #: messages that went out over a degraded link spec
    degraded_messages: int = 0


class FaultInjector:
    """Applies a scheduled fault plan to one network.

    Construction installs the injector as the network's
    ``fault_shaper``; faults are then added with :meth:`add_partition`,
    :meth:`add_link_degradation` and :meth:`add_node_outage`.  All three
    may be called before or during a run (scheduling into the past is
    clamped to "now").  ``timeline`` records every lifecycle transition
    for reporting.
    """

    def __init__(self, net: "Network") -> None:
        self.net = net
        self.sim = net.sim
        self._degradations: List[LinkDegradation] = []
        self._partitions: List[Partition] = []
        self._outages: List[NodeOutage] = []
        self.stats = FaultStats()
        #: (virtual time, human-readable fault event)
        self.timeline: List[Tuple[float, str]] = []
        net.fault_shaper = self._shape

    # ------------------------------------------------------------------
    # fault registration
    # ------------------------------------------------------------------
    def add_link_degradation(self, spec: LinkDegradation) -> LinkDegradation:
        self._degradations.append(spec)
        self._mark(spec.start, f"degradation start {_label(spec.src)}~{_label(spec.dst)}")
        self._mark(spec.end, f"degradation end {_label(spec.src)}~{_label(spec.dst)}")
        return spec

    def add_partition(self, spec: Partition) -> Partition:
        self._partitions.append(spec)
        self._mark(spec.start, f"partition start {_label(spec.a)}|{_label(spec.b)}")
        self._mark(spec.end, f"partition heal {_label(spec.a)}|{_label(spec.b)}")
        return spec

    def add(self, spec: FaultSpec) -> FaultSpec:
        """Register any fault spec (the deserialized-schedule entry point)."""
        if isinstance(spec, LinkDegradation):
            return self.add_link_degradation(spec)
        if isinstance(spec, Partition):
            return self.add_partition(spec)
        if isinstance(spec, NodeOutage):
            return self.add_node_outage(spec)
        raise TypeError(f"not a fault spec: {spec!r}")

    def add_node_outage(self, spec: NodeOutage) -> NodeOutage:
        self._outages.append(spec)
        rng = self.sim.rng("faults.outage")
        for down_at, up_at in expand_outage(spec, rng, now=self.sim.now):
            self.sim.schedule_at(down_at, self._crash, spec.address)
            self.sim.schedule_at(up_at, self._recover, spec.address)
        return spec

    # ------------------------------------------------------------------
    # node lifecycle drivers
    # ------------------------------------------------------------------
    def _crash(self, address: str) -> None:
        node = self.net.node(address)
        if node is None or not node.up:
            return
        node.crash()
        self.stats.crashes += 1
        self.timeline.append((self.sim.now, f"crash {address}"))

    def _recover(self, address: str) -> None:
        node = self.net.node(address)
        if node is None or node.up:
            return
        node.recover()
        self.stats.recoveries += 1
        self.timeline.append((self.sim.now, f"recover {address}"))

    def _mark(self, at: float, label: str) -> None:
        self.sim.schedule_at(
            max(at, self.sim.now), self.timeline.append, (at, label)
        )

    # ------------------------------------------------------------------
    # per-transmission shaping (the Network.fault_shaper hook)
    # ------------------------------------------------------------------
    def _shape(self, src: str, dst: str, spec: LinkSpec) -> Optional[LinkSpec]:
        now = self.sim.now
        for partition in self._partitions:
            if partition.start <= now < partition.end and partition.severs(src, dst):
                self.stats.partition_cuts += 1
                return None
        shaped = spec
        for degradation in self._degradations:
            severity = degradation.severity(now)
            if severity > 0.0 and degradation.matches(src, dst):
                shaped = LinkSpec(
                    latency=shaped.latency + severity * degradation.latency,
                    jitter=shaped.jitter + severity * degradation.jitter,
                    loss=min(1.0, shaped.loss + severity * degradation.loss),
                )
                self.stats.degraded_messages += 1
        return shaped

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def render_timeline(self) -> str:
        lines = [f"{t:8.3f}s  {label}" for t, label in sorted(self.timeline)]
        return "\n".join(lines)


def _label(group: FrozenSet[str]) -> str:
    members = sorted(group)
    if len(members) <= 2:
        return ",".join(members)
    return f"{members[0]},...x{len(members)}"
