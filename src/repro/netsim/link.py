"""Message delivery between nodes.

The :class:`Network` plays the role of the Internet between the paper's
DigitalOcean data centers: it knows every node by address and delivers
DNS messages with configurable one-way latency, jitter, and loss.  DNS
over UDP is connectionless, so an unknown destination or a lossy link
simply swallows the message -- timeouts and retries are the endpoints'
problem, exactly as in the real system (and the retry behaviour is part
of what makes adversarial congestion bite, cf. Figure 4b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.dnscore.message import Message
    from repro.netsim.node import Node  # reprolint: disable=R6 -- type-only mutual ref inside netsim; no runtime cycle
    from repro.netsim.sim import Simulator


@dataclass
class LinkSpec:
    """Delivery characteristics for one (src, dst) direction."""

    latency: float = 0.0005  # one-way, seconds (paper reports ~1 ms RTT)
    jitter: float = 0.0
    loss: float = 0.0


@dataclass
class NetworkStats:
    """Aggregate transport counters."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_lost: int = 0
    messages_unroutable: int = 0
    #: dropped because an endpoint was crashed (node down)
    messages_dropped_down: int = 0
    #: severed mid-air by an active partition fault
    messages_cut: int = 0
    bytes_sent: int = 0


class Network:
    """Address-indexed message fabric with per-pair link specs."""

    def __init__(self, sim: "Simulator", default_link: Optional[LinkSpec] = None) -> None:
        self.sim = sim
        self.default_link = default_link or LinkSpec()
        self._nodes: Dict[str, "Node"] = {}
        self._links: Dict[Tuple[str, str], LinkSpec] = {}
        self.stats = NetworkStats()
        #: fault-injection tap: may degrade the effective LinkSpec for one
        #: transmission or sever it entirely (returning None).  Installed
        #: by :class:`repro.netsim.faults.FaultInjector`.
        self.fault_shaper: Optional[
            Callable[[str, str, LinkSpec], Optional[LinkSpec]]
        ] = None

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def attach(self, node: "Node") -> None:
        if node.address in self._nodes:
            raise ValueError(f"address {node.address} already attached")
        self._nodes[node.address] = node
        node.network = self
        node.sim = self.sim

    def detach(self, address: str) -> None:
        node = self._nodes.pop(address, None)
        if node is not None:
            # Clear the back-references, or the detached node could keep
            # transmitting through a fabric it no longer belongs to.
            node.network = None
            node.sim = None

    def node(self, address: str) -> Optional["Node"]:
        return self._nodes.get(address)

    def set_link(self, src: str, dst: str, spec: LinkSpec, symmetric: bool = True) -> None:
        self._links[(src, dst)] = spec
        if symmetric:
            self._links[(dst, src)] = spec

    def link(self, src: str, dst: str) -> LinkSpec:
        return self._links.get((src, dst), self.default_link)

    # ------------------------------------------------------------------
    # delivery
    # ------------------------------------------------------------------
    def send(self, src: str, dst: str, message: "Message") -> None:
        """Fire-and-forget datagram semantics."""
        self.stats.messages_sent += 1
        self.stats.bytes_sent += message.wire_length()
        spec = self.link(src, dst)
        if self.fault_shaper is not None:
            spec = self.fault_shaper(src, dst, spec)
            if spec is None:  # severed by an active partition
                self.stats.messages_cut += 1
                return
        if spec.loss > 0 and self.sim.rng("network.loss").random() < spec.loss:
            self.stats.messages_lost += 1
            return
        delay = spec.latency
        if spec.jitter > 0:
            delay += self.sim.rng("network.jitter").uniform(0, spec.jitter)
        self.sim.schedule(delay, self._deliver, src, dst, message)

    def _deliver(self, src: str, dst: str, message: "Message") -> None:
        node = self._nodes.get(dst)
        if node is None:
            self.stats.messages_unroutable += 1
            return
        if not node.up:
            # Datagrams to a crashed host vanish; the sender's timers
            # discover the outage, exactly like UDP to a dead server.
            self.stats.messages_dropped_down += 1
            return
        self.stats.messages_delivered += 1
        node.receive(message, src)
