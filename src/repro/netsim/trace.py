"""Message tracing for debugging and analysis.

A :class:`MessageTrace` hooks a :class:`~repro.netsim.link.Network` and
records every DNS message it delivers: timestamp, endpoints, question,
kind, rcode, and size.  Filters keep traces small in big scenarios;
:meth:`summary` aggregates per-channel counts (handy to eyeball which
inter-server channel an attack is actually loading).

Tracing is passive: it never alters delivery, ordering, or timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.dnscore.message import Message
from repro.netsim.link import Network


@dataclass(frozen=True)
class TraceRecord:
    """One delivered message."""

    time: float
    src: str
    dst: str
    question: str
    is_response: bool
    rcode: str
    wire_bytes: int

    def __str__(self) -> str:
        kind = "<-" if self.is_response else "->"
        return (
            f"{self.time:10.6f} {self.src:>15s} {kind} {self.dst:<15s} "
            f"{self.question} {self.rcode if self.is_response else ''}".rstrip()
        )


class MessageTrace:
    """Records messages delivered by a network, with optional filtering."""

    def __init__(
        self,
        network: Network,
        predicate: Optional[Callable[[str, str, Message], bool]] = None,
        max_records: int = 100_000,
    ) -> None:
        self.records: List[TraceRecord] = []
        self.dropped = 0
        self.predicate = predicate
        self.max_records = max_records
        self._network = network
        self._original_deliver = network._deliver
        network._deliver = self._traced_deliver

    def _traced_deliver(self, src: str, dst: str, message: Message) -> None:
        if self.predicate is None or self.predicate(src, dst, message):
            if len(self.records) < self.max_records:
                self.records.append(
                    TraceRecord(
                        time=self._network.sim.now,
                        src=src,
                        dst=dst,
                        question=str(message.question),
                        is_response=message.is_response,
                        rcode=str(message.rcode),
                        wire_bytes=message.wire_length(),
                    )
                )
            else:
                self.dropped += 1
        self._original_deliver(src, dst, message)

    def detach(self) -> None:
        """Stop tracing; the network delivers directly again."""
        self._network._deliver = self._original_deliver

    # ------------------------------------------------------------------
    # queries over the trace
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def between(self, src: str, dst: str) -> List[TraceRecord]:
        return [r for r in self.records if r.src == src and r.dst == dst]

    def channel_counts(self) -> Dict[Tuple[str, str], int]:
        """Messages per directed (src, dst) channel."""
        counts: Dict[Tuple[str, str], int] = {}
        for record in self.records:
            key = (record.src, record.dst)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def channel_bytes(self) -> Dict[Tuple[str, str], int]:
        """Wire bytes per directed (src, dst) channel."""
        totals: Dict[Tuple[str, str], int] = {}
        for record in self.records:
            key = (record.src, record.dst)
            totals[key] = totals.get(key, 0) + record.wire_bytes
        return totals

    def byte_ratio(self) -> Optional[float]:
        """Response-to-query wire-byte ratio across the whole trace.

        The classic amplification indicator: >1 means answers outweigh
        questions.  None when the trace holds no query bytes.
        """
        query_bytes = 0
        response_bytes = 0
        for record in self.records:
            if record.is_response:
                response_bytes += record.wire_bytes
            else:
                query_bytes += record.wire_bytes
        if query_bytes == 0:
            return None
        return response_bytes / query_bytes

    def summary(self, top: int = 10) -> str:
        """The busiest channels, one per line, with byte totals."""
        byte_totals = self.channel_bytes()
        ranked = sorted(self.channel_counts().items(), key=lambda kv: -kv[1])
        lines = [
            f"{src:>15s} -> {dst:<15s} {count:8d} msgs {byte_totals[(src, dst)]:10d} B"
            for (src, dst), count in ranked[:top]
        ]
        ratio = self.byte_ratio()
        if ratio is not None:
            lines.append(f"response/query byte ratio: {ratio:.2f}")
        if self.dropped:
            lines.append(f"(+{self.dropped} records beyond max_records)")
        return "\n".join(lines)

    def dump(self, limit: int = 50) -> str:
        return "\n".join(str(record) for record in self.records[:limit])
