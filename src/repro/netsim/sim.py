"""The discrete-event simulator core.

A binary heap of timestamped events drives virtual time forward.  Events
scheduled for the same instant fire in scheduling order (a monotone
sequence number breaks ties), which keeps runs deterministic regardless
of hash seeds or dict ordering.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Any, Callable, Dict, List, Optional

from repro import sanitize as simsan


class Event:
    """A scheduled callback; cancel() makes it a no-op."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        # Back-reference while the event sits in the owner's heap, so the
        # owner can track how much of the heap is dead weight.  Cleared
        # when the event is popped; cancelling after that is a no-op.
        self._sim = sim

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, {getattr(self.fn, '__name__', self.fn)}, {state})"


class Simulator:
    """Virtual clock + event heap + named deterministic PRNG streams."""

    #: compact the heap only once it holds at least this many events
    #: (tiny heaps are cheaper to drain than to rebuild)
    COMPACT_MIN_SIZE = 64

    def __init__(self, seed: int = 42, sanitize: Optional[bool] = None) -> None:
        self._now = 0.0
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._seed = seed
        self._rngs: Dict[str, random.Random] = {}
        self.events_processed = 0
        #: cancelled events still sitting in the heap (lazy cancellation)
        self._cancelled = 0
        self.compactions = 0
        #: SimSan: check heap monotonicity and compaction soundness at
        #: runtime (defaults to the REPRO_SIMSAN environment switch)
        self.sanitize = simsan.ENABLED if sanitize is None else bool(sanitize)
        #: observability sampler, invoked with the new clock value on
        #: every advance.  Riding the run loop instead of scheduling
        #: keeps the event count -- and thus the selfcheck digest --
        #: identical whether or not anything is observing.
        self.obs_tick: Optional[Callable[[float], None]] = None

    # ------------------------------------------------------------------
    # time and randomness
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def rng(self, stream: str) -> random.Random:
        """A PRNG dedicated to ``stream``.

        Separate streams mean, e.g., attacker name generation cannot
        perturb network jitter: each consumer draws from its own
        deterministic sequence.
        """
        rng = self._rngs.get(stream)
        if rng is None:
            rng = random.Random(f"{self._seed}:{stream}")
            self._rngs[stream] = rng
        return rng

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} < now {self._now}")
        event = Event(time, next(self._seq), fn, args, sim=self)
        heapq.heappush(self._heap, event)
        return event

    def _note_cancelled(self) -> None:
        """Lazy cancellation bookkeeping: every answered query cancels a
        timeout event that would otherwise linger in the heap until its
        deadline.  Once more than half the queue is dead, rebuilding the
        heap is cheaper than sifting the corpses through every push/pop.
        """
        self._cancelled += 1
        if (
            len(self._heap) >= self.COMPACT_MIN_SIZE
            and self._cancelled * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        live = [event for event in self._heap if not event.cancelled]
        before = sorted((e.time, e.seq) for e in live) if self.sanitize else None
        self._heap = self._rebuild_heap(live)
        if before is not None:
            after = sorted((e.time, e.seq) for e in self._heap)
            if before != after:
                simsan.fail(
                    "heap compaction changed the live-event multiset "
                    f"({len(before)} events before, {len(after)} after)"
                )
        self._cancelled = 0
        self.compactions += 1

    def _rebuild_heap(self, live: List[Event]) -> List[Event]:
        """Heapify the surviving events (split out so SimSan can verify
        the live-event multiset across any alternative implementation)."""
        heapq.heapify(live)
        return live

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn`` at the current instant, after already-queued
        same-instant events."""
        return self.schedule(0.0, fn, *args)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Process events until the heap drains, ``until`` is reached, or
        ``max_events`` have fired.

        When stopping at ``until``, the clock is advanced to exactly
        ``until`` so periodic samplers see a full final interval.
        """
        processed = 0
        while self._heap:
            event = self._heap[0]
            if until is not None and event.time > until:
                break
            heapq.heappop(self._heap)
            event._sim = None
            if event.cancelled:
                self._cancelled -= 1
                continue
            if self.sanitize and event.time < self._now:
                simsan.fail(
                    f"event dequeued in the past: t={event.time!r} < now={self._now!r} ({event!r})"
                )
            self._now = event.time
            if self.obs_tick is not None:
                self.obs_tick(event.time)
            event.fn(*event.args)
            processed += 1
            self.events_processed += 1
            if max_events is not None and processed >= max_events:
                break
        if until is not None and self._now < until:
            self._now = until
            if self.obs_tick is not None:
                self.obs_tick(until)

    def step(self) -> bool:
        """Process a single event; returns False when the heap is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            event._sim = None
            if event.cancelled:
                self._cancelled -= 1
                continue
            if self.sanitize and event.time < self._now:
                simsan.fail(
                    f"event dequeued in the past: t={event.time!r} < now={self._now!r} ({event!r})"
                )
            self._now = event.time
            if self.obs_tick is not None:
                self.obs_tick(event.time)
            event.fn(*event.args)
            self.events_processed += 1
            return True
        return False

    def pending(self) -> int:
        """Number of live (non-cancelled) queued events."""
        return len(self._heap) - self._cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self._now:.6f}, pending={self.pending()})"
