"""Base class for simulated network entities.

Every node carries an up/down lifecycle so the fault injector
(:mod:`repro.netsim.faults`) can crash and restart infrastructure
mid-run.  A down node neither transmits nor receives; what happens to
its *state* across the outage is the subclass's business, expressed in
``on_crash`` / ``on_recover`` (e.g. a recursive resolver abandons every
in-flight resolution and loses its cache, the DCC shim loses its monitor
and conviction tables -- all of that is process memory in the real
systems the paper measures).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

from repro.obs import NULL_OBS

if TYPE_CHECKING:  # pragma: no cover
    from repro.dnscore.message import Message
    from repro.netsim.link import Network  # reprolint: disable=R6 -- type-only mutual ref inside netsim; no runtime cycle
    from repro.netsim.sim import Simulator


class Node:
    """Anything with an address that can send and receive DNS messages.

    Subclasses: stub clients, attackers, forwarders, recursive resolvers,
    authoritative servers, and the DCC shim (which interposes between a
    resolver and the network without the resolver noticing -- the paper's
    non-invasive architecture, Figure 5).
    """

    def __init__(self, address: str) -> None:
        self.address = address
        self.network: Optional["Network"] = None
        self.sim: Optional["Simulator"] = None
        #: lifecycle: a down node cannot send or receive messages
        self.up = True
        #: extra lifecycle observers (the DCC shim rides its host's
        #: crashes without subclassing it), fired after on_crash/on_recover
        self.crash_hooks: List[Callable[[], None]] = []
        self.recover_hooks: List[Callable[[], None]] = []
        #: observability facade; the no-op singleton unless a scenario
        #: opts in (see :mod:`repro.obs`)
        self.obs = NULL_OBS

    @property
    def now(self) -> float:
        assert self.sim is not None, f"{self.address} is not attached to a simulator"
        return self.sim.now

    def send(self, dst: str, message: "Message") -> None:
        assert self.network is not None, f"{self.address} is not attached to a network"
        if not self.up:
            # A stale timer on a crashed node must not leak traffic.
            self.network.stats.messages_dropped_down += 1
            return
        self.network.send(self.address, dst, message)

    def receive(self, message: "Message", src: str) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Take the node down, losing whatever state on_crash() says a
        real crash of this entity would lose."""
        if not self.up:
            return
        self.up = False
        self.on_crash()
        for hook in self.crash_hooks:
            hook()

    def recover(self) -> None:
        """Bring the node back up (restart after a crash)."""
        if self.up:
            return
        self.up = True
        self.on_recover()
        for hook in self.recover_hooks:
            hook()

    def on_crash(self) -> None:
        """Subclass hook: drop whatever a process crash would lose."""

    def on_recover(self) -> None:
        """Subclass hook: re-read whatever a restart reloads from disk."""

    def __repr__(self) -> str:
        state = "" if self.up else ", down"
        return f"{type(self).__name__}({self.address}{state})"
