"""Base class for simulated network entities."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.dnscore.message import Message
    from repro.netsim.link import Network
    from repro.netsim.sim import Simulator


class Node:
    """Anything with an address that can send and receive DNS messages.

    Subclasses: stub clients, attackers, forwarders, recursive resolvers,
    authoritative servers, and the DCC shim (which interposes between a
    resolver and the network without the resolver noticing -- the paper's
    non-invasive architecture, Figure 5).
    """

    def __init__(self, address: str) -> None:
        self.address = address
        self.network: Optional["Network"] = None
        self.sim: Optional["Simulator"] = None

    @property
    def now(self) -> float:
        assert self.sim is not None, f"{self.address} is not attached to a simulator"
        return self.sim.now

    def send(self, dst: str, message: "Message") -> None:
        assert self.network is not None, f"{self.address} is not attached to a network"
        self.network.send(self.address, dst, message)

    def receive(self, message: "Message", src: str) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.address})"
