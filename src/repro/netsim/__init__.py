"""Discrete-event network simulation substrate.

The paper evaluates on BIND 9 instances spread over cloud VMs; this
reproduction replaces that testbed with a deterministic virtual-time
simulator:

- :class:`repro.netsim.sim.Simulator` -- event heap + virtual clock;
- :class:`repro.netsim.link.Network` -- message delivery with
  configurable per-pair latency, jitter and loss;
- :class:`repro.netsim.node.Node` -- base class for every DNS entity
  (stub client, forwarder, recursive resolver, authoritative server,
  DCC shim).

Virtual time is in seconds (float).  All randomness flows through named
PRNG streams owned by the simulator, so every experiment is exactly
reproducible from its seed.
"""

from repro.netsim.sim import Simulator, Event
from repro.netsim.link import Network, LinkSpec
from repro.netsim.node import Node

__all__ = ["Simulator", "Event", "Network", "LinkSpec", "Node"]
