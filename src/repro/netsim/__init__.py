"""Discrete-event network simulation substrate.

The paper evaluates on BIND 9 instances spread over cloud VMs; this
reproduction replaces that testbed with a deterministic virtual-time
simulator:

- :class:`repro.netsim.sim.Simulator` -- event heap + virtual clock;
- :class:`repro.netsim.link.Network` -- message delivery with
  configurable per-pair latency, jitter and loss;
- :class:`repro.netsim.node.Node` -- base class for every DNS entity
  (stub client, forwarder, recursive resolver, authoritative server,
  DCC shim).

Virtual time is in seconds (float).  All randomness flows through named
PRNG streams owned by the simulator, so every experiment is exactly
reproducible from its seed.

:mod:`repro.netsim.faults` adds scheduled fault injection on top:
time-varying link degradation, partitions between address groups, and
node crash/recover cycles honoring each node's lifecycle hooks.

``Simulator`` and ``Network`` are also the reference implementations of
the backend-neutral ``Clock`` and ``Fabric`` protocols in
:mod:`repro.transport.base` (they satisfy them structurally, with no
import edge from here to there); :mod:`repro.transport.udp` is the
real-socket twin that runs the same nodes over localhost datagrams.
"""

from repro.netsim.sim import Simulator, Event
from repro.netsim.link import Network, LinkSpec
from repro.netsim.node import Node
from repro.netsim.faults import (
    FaultInjector,
    LinkDegradation,
    NodeOutage,
    Partition,
)

__all__ = [
    "Simulator",
    "Event",
    "Network",
    "LinkSpec",
    "Node",
    "FaultInjector",
    "LinkDegradation",
    "NodeOutage",
    "Partition",
]
