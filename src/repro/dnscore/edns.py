"""EDNS(0) options (RFC 6891).

Two option families matter to DCC:

- **Query attribution** (paper Section 5): the prototype repurposes the
  EDNS Client Subnet option (RFC 7871) to stamp each resolver-generated
  query with "the client's IP address, source port, and DNS request ID",
  so a non-invasive DCC shim can link every outgoing query back to the
  responsible client request.  :class:`ClientAttribution` implements this.

- **DCC signals** (paper Section 3.3): anomaly / policing / congestion
  signals are "semantically similar to and can be specified as Extended
  DNS Errors" (RFC 8914).  The typed signal classes live in
  :mod:`repro.dcc.signaling`; here we only reserve their option codes and
  provide the generic (code, payload) encode/decode plumbing.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.dnscore.errors import WireDecodeError

#: Advertised EDNS UDP payload size used by every server in the simulation.
EDNS_UDP_SIZE = 1232


class OptionCode(enum.IntEnum):
    """EDNS option codes used in this system.

    ``CLIENT_ATTRIBUTION`` squats on the Client Subnet code point exactly
    as the paper's prototype does; the DCC signal codes are from the
    experimental/local-use range (RFC 6891 allots 65001-65534).
    """

    CLIENT_SUBNET = 8
    EXTENDED_ERROR = 15
    CLIENT_ATTRIBUTION = 8  # alias: the paper repurposes Client Subnet
    DCC_ANOMALY = 65101
    DCC_POLICING = 65102
    DCC_CONGESTION = 65103
    DCC_CAPACITY = 65104


@dataclass(frozen=True)
class EdnsOption:
    """A raw EDNS option: numeric code plus opaque payload."""

    code: int
    payload: bytes

    def wire_length(self) -> int:
        return 4 + len(self.payload)


@dataclass(frozen=True)
class ClientAttribution:
    """Identity of the client request a resolver query derives from.

    ``client`` is the requesting host's address (string form), ``port``
    its source port, and ``request_id`` the DNS ID of the triggering
    request -- the exact triple the paper's modified BIND embeds.
    """

    client: str
    port: int
    request_id: int

    def encode(self) -> EdnsOption:
        addr = self.client.encode("ascii")
        payload = struct.pack("!HIB", self.port, self.request_id, len(addr)) + addr
        return EdnsOption(OptionCode.CLIENT_ATTRIBUTION, payload)

    @classmethod
    def decode(cls, option: EdnsOption) -> "ClientAttribution":
        if len(option.payload) < 7:
            raise WireDecodeError("attribution option payload too short")
        port, request_id, addr_len = struct.unpack("!HIB", option.payload[:7])
        addr = option.payload[7 : 7 + addr_len]
        if len(addr) != addr_len:
            raise WireDecodeError("attribution option truncated address")
        return cls(client=addr.decode("ascii"), port=port, request_id=request_id)

    @property
    def key(self) -> Tuple[str, int, int]:
        return (self.client, self.port, self.request_id)


def opaque_client_token(client: str, salt: str, length: int = 12) -> str:
    """A stable, non-invertible per-client token for query attribution.

    Oblivious-DNS proxies (paper Section 6) must attribute queries to
    clients "without the need to see queries in plaintext" -- and more to
    the point, without *revealing* client identities to the upstream.
    Hashing the client identity under a proxy-private salt preserves the
    only property DCC's fairness needs (identity consistency) while
    keeping the mapping one-way: the upstream resolver treats the token
    exactly like any client address.
    """
    import hashlib

    digest = hashlib.blake2s(
        client.encode("utf-8"), salt=salt.encode("utf-8")[:8]
    ).hexdigest()
    return f"anon-{digest[:length]}"


def find_option(options: List[EdnsOption], code: int) -> Optional[EdnsOption]:
    """First option with ``code``, or ``None``."""
    for opt in options:
        if opt.code == code:
            return opt
    return None


def remove_options(options: List[EdnsOption], code: int) -> List[EdnsOption]:
    """A copy of ``options`` with every option of ``code`` removed."""
    return [opt for opt in options if opt.code != code]
