"""From-scratch DNS data model.

This subpackage implements the DNS substrate the paper's systems are
built on: domain names, resource records, messages with EDNS(0), a wire
codec with name compression, and authoritative zones with RFC-faithful
lookup semantics (wildcard synthesis, delegations, CNAME chains, negative
answers).

Nothing here depends on the network or the simulator; it is a pure data
layer shared by the authoritative server, resolvers, DCC, and the
workload generators.
"""

from repro.dnscore.name import Name, ROOT
from repro.dnscore.rdata import (
    RRType,
    RCode,
    Opcode,
    RData,
    AData,
    AAAAData,
    NSData,
    NSECData,
    CNAMEData,
    SOAData,
    TXTData,
    PTRData,
    MXData,
    OPTData,
)
from repro.dnscore.rrset import ResourceRecord, RRSet
from repro.dnscore.message import Question, Message, Flags
from repro.dnscore.edns import (
    EdnsOption,
    OptionCode,
    ClientAttribution,
    EDNS_UDP_SIZE,
    opaque_client_token,
)
from repro.dnscore.zone import Zone, LookupResult, LookupStatus
from repro.dnscore.errors import (
    DnsError,
    FormError,
    NameTooLong,
    WireDecodeError,
    ZoneError,
)

__all__ = [
    "Name",
    "ROOT",
    "RRType",
    "RCode",
    "Opcode",
    "RData",
    "AData",
    "AAAAData",
    "NSData",
    "NSECData",
    "CNAMEData",
    "SOAData",
    "TXTData",
    "PTRData",
    "MXData",
    "OPTData",
    "ResourceRecord",
    "RRSet",
    "Question",
    "Message",
    "Flags",
    "EdnsOption",
    "OptionCode",
    "ClientAttribution",
    "EDNS_UDP_SIZE",
    "opaque_client_token",
    "Zone",
    "LookupResult",
    "LookupStatus",
    "DnsError",
    "FormError",
    "NameTooLong",
    "WireDecodeError",
    "ZoneError",
]
