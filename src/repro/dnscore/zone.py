"""Authoritative zones with RFC-faithful lookup semantics.

The lookup algorithm follows RFC 1034 section 4.3.2 as deployed by
modern authoritative servers:

- **delegations**: an NS RRset at a non-apex name is a zone cut; queries
  at or below the cut yield a referral with in-zone glue;
- **wildcard synthesis** (RFC 4592): ``*.<closest encloser>`` matches
  names that do not exist, producing answers under the queried owner --
  the "WC" pattern the paper's attackers and benign clients use to
  bypass caches with NOERROR answers;
- **empty non-terminals** exist (NODATA), they are not NXDOMAIN;
- **CNAMEs** are returned one link at a time (configurable chasing is the
  resolver's job), enabling the CQ amplification pattern;
- **negative answers** carry the SOA whose ``minimum`` bounds negative
  caching (RFC 2308).

Zones are also the substrate for the attack-pattern generators in
:mod:`repro.workloads.zonegen` (wildcards, CNAME chains, NS fan-out).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.dnscore.errors import ZoneError
from repro.dnscore.name import Name, NameLike, as_name
from repro.dnscore.rdata import (
    AAAAData,
    AData,
    CNAMEData,
    NSData,
    RRType,
    SOAData,
    TXTData,
)
from repro.dnscore.rrset import ResourceRecord, RRSet


class LookupStatus(enum.Enum):
    """Outcome classes of an authoritative lookup."""

    ANSWER = "answer"
    CNAME = "cname"
    DELEGATION = "delegation"
    NODATA = "nodata"
    NXDOMAIN = "nxdomain"
    NOTZONE = "notzone"


@dataclass
class LookupResult:
    """What the zone found for a (qname, qtype) pair."""

    status: LookupStatus
    answers: List[RRSet] = field(default_factory=list)
    authority: List[RRSet] = field(default_factory=list)
    additional: List[RRSet] = field(default_factory=list)
    #: True when the answer was synthesised from a wildcard.
    wildcard: bool = False
    #: For DELEGATION: the owner of the zone cut.
    cut: Optional[Name] = None


class Zone:
    """One authoritative zone rooted at ``origin``.

    A ``signed`` zone attaches simplified NSEC denial ranges to its
    NXDOMAIN answers, enabling resolvers to do RFC 8198 aggressive
    negative caching (the Section 2.3 countermeasure to NX floods).
    """

    def __init__(self, origin: NameLike, default_ttl: int = 300, signed: bool = False) -> None:
        self.origin = as_name(origin)
        self.default_ttl = default_ttl
        self.signed = signed
        #: owner -> rrtype -> RRSet
        self._nodes: Dict[Name, Dict[RRType, RRSet]] = {}
        #: names that exist only as ancestors of record owners
        self._nonterminals: Set[Name] = set()
        self._sorted_names: Optional[list] = None  # canonical-order cache

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_record(self, record: ResourceRecord) -> None:
        if not record.name.is_subdomain_of(self.origin):
            raise ZoneError(f"{record.name} is out of zone {self.origin}")
        types = self._nodes.setdefault(record.name, {})
        rrset = types.get(record.rrtype)
        if rrset is None:
            types[record.rrtype] = RRSet.of(record)
        else:
            rrset.add(record)
        self._sorted_names = None  # invalidate the canonical-order cache
        # Register empty non-terminals between origin and the owner.
        ancestor = record.name
        while ancestor != self.origin:
            ancestor = ancestor.parent()
            if ancestor == self.origin:
                break
            self._nonterminals.add(ancestor)

    def add(self, name: NameLike, rdata, ttl: Optional[int] = None) -> ResourceRecord:
        """Convenience: build and insert a record; name may be relative
        text (no trailing dot) which is taken as zone-relative."""
        owner = self._absolute(name)
        record = ResourceRecord(owner, self.default_ttl if ttl is None else ttl, rdata)
        self.add_record(record)
        return record

    def add_soa(
        self,
        mname: NameLike = "ns1",
        rname: NameLike = "hostmaster",
        negative_ttl: int = 300,
        ttl: Optional[int] = None,
    ) -> ResourceRecord:
        soa = SOAData(
            mname=self._absolute(mname),
            rname=self._absolute(rname),
            minimum=negative_ttl,
        )
        return self.add(self.origin, soa, ttl=ttl)

    def add_a(self, name: NameLike, address: str, ttl: Optional[int] = None) -> ResourceRecord:
        return self.add(name, AData(address), ttl=ttl)

    def add_aaaa(self, name: NameLike, address: str, ttl: Optional[int] = None) -> ResourceRecord:
        return self.add(name, AAAAData(address), ttl=ttl)

    def add_ns(self, name: NameLike, target: NameLike, ttl: Optional[int] = None) -> ResourceRecord:
        return self.add(name, NSData(self._absolute(target)), ttl=ttl)

    def add_cname(self, name: NameLike, target: NameLike, ttl: Optional[int] = None) -> ResourceRecord:
        return self.add(name, CNAMEData(self._absolute(target)), ttl=ttl)

    def add_txt(self, name: NameLike, text: str, ttl: Optional[int] = None) -> ResourceRecord:
        return self.add(name, TXTData(text), ttl=ttl)

    def add_wildcard_a(self, under: NameLike, address: str, ttl: Optional[int] = None) -> ResourceRecord:
        """Install ``*.<under>  A  <address>`` -- one wildcard record is
        all an attacker needs for cache-bypassing NOERROR floods
        (paper Section 2.3)."""
        under_name = self._absolute(under)
        return self.add(under_name.child("*"), AData(address), ttl=ttl)

    def _absolute(self, name: NameLike) -> Name:
        if isinstance(name, Name):
            return name
        text = name.strip()
        if text == "@":
            return self.origin
        if text.endswith("."):
            return Name.from_text(text)
        return Name.from_text(text).concat(self.origin)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def soa(self) -> RRSet:
        types = self._nodes.get(self.origin, {})
        soa = types.get(RRType.SOA)
        if soa is None:
            raise ZoneError(f"zone {self.origin} has no SOA")
        return soa

    def rrset(self, name: NameLike, rrtype: RRType) -> Optional[RRSet]:
        return self._nodes.get(self._absolute(name), {}).get(rrtype)

    def node_exists(self, name: Name) -> bool:
        return name in self._nodes or name in self._nonterminals or name == self.origin

    def record_count(self) -> int:
        return sum(
            len(rrset) for types in self._nodes.values() for rrset in types.values()
        )

    def owners(self) -> Iterator[Name]:
        return iter(self._nodes)

    def rrsets_at(self, name: NameLike) -> Dict[RRType, RRSet]:
        """All RRsets at one owner (empty dict when the owner has none);
        the zone-graph validator's raw view of a node."""
        return dict(self._nodes.get(self._absolute(name), {}))

    def __contains__(self, name: NameLike) -> bool:
        return self.node_exists(self._absolute(name))

    def __repr__(self) -> str:
        return f"Zone({self.origin}, {self.record_count()} records)"

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def lookup(self, qname: NameLike, qtype: RRType) -> LookupResult:
        """Authoritative lookup per RFC 1034 section 4.3.2.

        Text names without a trailing dot are zone-relative, matching
        the builder API.
        """
        qname = self._absolute(qname)
        if not qname.is_subdomain_of(self.origin):
            return LookupResult(LookupStatus.NOTZONE)

        cut = self._find_cut(qname)
        if cut is not None:
            return self._referral(cut)

        types = self._nodes.get(qname)
        if types is not None:
            return self._answer_from_node(qname, qname, types, qtype, wildcard=False)
        if qname in self._nonterminals or qname == self.origin:
            return self._nodata()

        # The name does not exist: try RFC 4592 wildcard synthesis at
        # *.<closest encloser>.
        closest = self._closest_encloser(qname)
        source = closest.child("*")
        wtypes = self._nodes.get(source)
        if wtypes is not None:
            return self._answer_from_node(qname, source, wtypes, qtype, wildcard=True)
        return self._nxdomain(qname)

    def _find_cut(self, qname: Name) -> Optional[Name]:
        """First zone cut on the path from just below the apex to qname."""
        rel = qname.relativize(self.origin)
        node = self.origin
        for label in reversed(rel):
            node = node.child(label)
            types = self._nodes.get(node)
            if types is not None and RRType.NS in types and node != self.origin:
                return node
        return None

    def _closest_encloser(self, qname: Name) -> Name:
        for ancestor in qname.ancestors():
            if ancestor == qname:
                continue
            if self.node_exists(ancestor):
                return ancestor
            if ancestor == self.origin:
                break
        return self.origin

    def _answer_from_node(
        self,
        qname: Name,
        owner: Name,
        types: Dict[RRType, RRSet],
        qtype: RRType,
        wildcard: bool,
    ) -> LookupResult:
        def synth(rrset: RRSet) -> RRSet:
            return rrset.with_name(qname) if wildcard else rrset

        if qtype == RRType.ANY:
            answers = [synth(rrset) for rrset in types.values()]
            return LookupResult(LookupStatus.ANSWER, answers=answers, wildcard=wildcard)
        rrset = types.get(qtype)
        if rrset is not None:
            return LookupResult(LookupStatus.ANSWER, answers=[synth(rrset)], wildcard=wildcard)
        cname = types.get(RRType.CNAME)
        if cname is not None:
            return LookupResult(LookupStatus.CNAME, answers=[synth(cname)], wildcard=wildcard)
        return self._nodata(wildcard=wildcard)

    def _referral(self, cut: Name) -> LookupResult:
        ns_rrset = self._nodes[cut][RRType.NS]
        glue: List[RRSet] = []
        for record in ns_rrset:
            target = record.rdata.target  # type: ignore[union-attr]
            if target.is_subdomain_of(self.origin):
                for addr_type in (RRType.A, RRType.AAAA):
                    addr_rrset = self._nodes.get(target, {}).get(addr_type)
                    if addr_rrset is not None:
                        glue.append(addr_rrset)
        return LookupResult(
            LookupStatus.DELEGATION,
            authority=[ns_rrset],
            additional=glue,
            cut=cut,
        )

    def _nodata(self, wildcard: bool = False) -> LookupResult:
        return LookupResult(LookupStatus.NODATA, authority=[self.soa], wildcard=wildcard)

    def _nxdomain(self, qname: Optional[Name] = None) -> LookupResult:
        authority = [self.soa]
        if self.signed and qname is not None:
            authority.append(self._denial_range(qname))
        return LookupResult(LookupStatus.NXDOMAIN, authority=authority)

    def _denial_range(self, qname: Name) -> RRSet:
        """The NSEC record covering ``qname``: owner is the canonically
        previous existing name, rdata the next one (wrapping around the
        zone as the real NSEC chain does)."""
        import bisect

        from repro.dnscore.rdata import NSECData

        if self._sorted_names is None:
            existing = set(self._nodes) | self._nonterminals | {self.origin}
            names_sorted = sorted(existing, key=lambda n: n.canonical_key())
            self._sorted_names = (names_sorted, [n.canonical_key() for n in names_sorted])
        names, keys = self._sorted_names
        index = bisect.bisect_left(keys, qname.canonical_key())
        prev_name = names[index - 1] if index > 0 else names[-1]
        next_name = names[index % len(names)]
        ttl = self.soa.records[0].rdata.minimum  # negative TTL (RFC 2308)
        return RRSet.of(ResourceRecord(prev_name, ttl, NSECData(next_name)))
