"""Record types, response codes, and rdata payloads.

The set of record types is the subset the paper's scenarios exercise:
address records (A/AAAA) for glue and terminal answers, NS for
delegations and the FF amplification pattern, CNAME for chains (the CQ
pattern), SOA for negative answers, plus TXT/PTR/MX to make zones and
tests realistic, and OPT as the EDNS(0) pseudo-record carrier.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple

from repro.dnscore.name import Name


class RRType(enum.IntEnum):
    """DNS RR TYPE values (RFC 1035 and successors)."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    PTR = 12
    MX = 15
    TXT = 16
    AAAA = 28
    NSEC = 47
    OPT = 41
    ANY = 255

    def __str__(self) -> str:
        return self.name


class RCode(enum.IntEnum):
    """DNS response codes (RFC 1035 section 4.1.1 + RFC 6895)."""

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5

    def __str__(self) -> str:
        return self.name

    @property
    def is_success(self) -> bool:
        """NOERROR and NXDOMAIN both count as *successful resolution*.

        The paper's effective-QPS metric (Figure 8 caption) counts
        NOERROR and NXDOMAIN responses as successes -- a definitive
        negative answer is still an answer.
        """
        return self in (RCode.NOERROR, RCode.NXDOMAIN)


class Opcode(enum.IntEnum):
    QUERY = 0
    NOTIFY = 4
    UPDATE = 5


class RData:
    """Base class for typed rdata payloads."""

    rrtype: RRType

    def wire_length(self) -> int:
        """Approximate uncompressed RDATA length in octets."""
        raise NotImplementedError

    def to_text(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class AData(RData):
    """IPv4 address rdata."""

    address: str
    rrtype: RRType = field(default=RRType.A, init=False, repr=False)

    def wire_length(self) -> int:
        return 4

    def to_text(self) -> str:
        return self.address


@dataclass(frozen=True)
class AAAAData(RData):
    """IPv6 address rdata."""

    address: str
    rrtype: RRType = field(default=RRType.AAAA, init=False, repr=False)

    def wire_length(self) -> int:
        return 16

    def to_text(self) -> str:
        return self.address


@dataclass(frozen=True)
class NSData(RData):
    """Nameserver rdata: the target server's host name."""

    target: Name
    rrtype: RRType = field(default=RRType.NS, init=False, repr=False)

    def wire_length(self) -> int:
        return self.target.wire_length()

    def to_text(self) -> str:
        return str(self.target)


@dataclass(frozen=True)
class CNAMEData(RData):
    """Canonical-name rdata: the alias target."""

    target: Name
    rrtype: RRType = field(default=RRType.CNAME, init=False, repr=False)

    def wire_length(self) -> int:
        return self.target.wire_length()

    def to_text(self) -> str:
        return str(self.target)


@dataclass(frozen=True)
class SOAData(RData):
    """Start-of-authority rdata; ``minimum`` doubles as the negative TTL
    (RFC 2308)."""

    mname: Name
    rname: Name
    serial: int = 1
    refresh: int = 3600
    retry: int = 600
    expire: int = 86400
    minimum: int = 300

    rrtype: RRType = field(default=RRType.SOA, init=False, repr=False)

    def wire_length(self) -> int:
        return self.mname.wire_length() + self.rname.wire_length() + 20

    def to_text(self) -> str:
        return (
            f"{self.mname} {self.rname} {self.serial} {self.refresh} "
            f"{self.retry} {self.expire} {self.minimum}"
        )


@dataclass(frozen=True)
class TXTData(RData):
    """Text rdata (single string)."""

    text: str
    rrtype: RRType = field(default=RRType.TXT, init=False, repr=False)

    def wire_length(self) -> int:
        return len(self.text) + 1

    def to_text(self) -> str:
        return f'"{self.text}"'


@dataclass(frozen=True)
class PTRData(RData):
    """Pointer rdata."""

    target: Name
    rrtype: RRType = field(default=RRType.PTR, init=False, repr=False)

    def wire_length(self) -> int:
        return self.target.wire_length()

    def to_text(self) -> str:
        return str(self.target)


@dataclass(frozen=True)
class MXData(RData):
    """Mail-exchange rdata."""

    preference: int
    exchange: Name
    rrtype: RRType = field(default=RRType.MX, init=False, repr=False)

    def wire_length(self) -> int:
        return 2 + self.exchange.wire_length()

    def to_text(self) -> str:
        return f"{self.preference} {self.exchange}"


@dataclass(frozen=True)
class NSECData(RData):
    """Authenticated denial of existence (simplified NSEC, RFC 4034).

    The record's owner is the canonically-previous existing name and
    ``next_name`` the canonically-next one: nothing exists between them.
    Signed zones attach it to NXDOMAIN answers, enabling RFC 8198
    aggressive negative caching -- the countermeasure the paper cites
    against pseudo-random-subdomain floods (Section 2.3).  Signature
    material is abstracted away (the simulation's adversary cannot forge
    messages; anti-spoofing is assumed, Section 3.1).
    """

    next_name: Name
    rrtype: RRType = field(default=RRType.NSEC, init=False, repr=False)

    def wire_length(self) -> int:
        return self.next_name.wire_length() + 2

    def to_text(self) -> str:
        return str(self.next_name)


@dataclass(frozen=True)
class OPTData(RData):
    """EDNS(0) OPT pseudo-record payload: raw option list.

    Options are ``(code, payload_bytes)`` pairs; the typed view lives in
    :mod:`repro.dnscore.edns`.
    """

    options: Tuple[Tuple[int, bytes], ...] = ()
    rrtype: RRType = field(default=RRType.OPT, init=False, repr=False)

    def wire_length(self) -> int:
        return sum(4 + len(payload) for _, payload in self.options)

    def to_text(self) -> str:
        return " ".join(f"opt{code}={payload.hex()}" for code, payload in self.options)
