"""DNS messages.

A :class:`Message` models the RFC 1035 message: header (ID, flags,
rcode), one question, and answer/authority/additional sections of
:class:`~repro.dnscore.rrset.RRSet`.  EDNS options ride in
``msg.edns_options`` (conceptually the OPT pseudo-record in the
additional section; the wire codec serialises them as such).

Messages are mutable while being built and treated as immutable once
sent; helpers construct the response shapes the servers need (answers,
referrals, negative answers, error responses).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from repro.dnscore.edns import EdnsOption, find_option
from repro.dnscore.name import Name
from repro.dnscore.rdata import Opcode, RCode, RRType
from repro.dnscore.rrset import RRSet

_message_ids = itertools.count(1)


def next_message_id() -> int:
    """Monotone message IDs; deterministic across runs.

    Simulation-internal IDs use a 31-bit space so that in-flight-table
    keys never collide even in very long runs; the wire codec truncates
    to the protocol's 16 bits on encode.
    """
    return next(_message_ids) & 0x7FFFFFFF


class Flags(enum.IntFlag):
    """Header flag bits (QR/AA/TC/RD/RA in their RFC 1035 positions)."""

    QR = 0x8000
    AA = 0x0400
    TC = 0x0200
    RD = 0x0100
    RA = 0x0080


@dataclass(frozen=True)
class Question:
    """The question section entry: (QNAME, QTYPE); IN class implied."""

    name: Name
    rrtype: RRType

    def __str__(self) -> str:
        return f"{self.name} {self.rrtype}"

    def wire_length(self) -> int:
        return self.name.wire_length() + 4


@dataclass
class Message:
    """A DNS query or response."""

    question: Question
    id: int = field(default_factory=next_message_id)
    opcode: Opcode = Opcode.QUERY
    flags: Flags = Flags(0)
    rcode: RCode = RCode.NOERROR
    answers: List[RRSet] = field(default_factory=list)
    authority: List[RRSet] = field(default_factory=list)
    additional: List[RRSet] = field(default_factory=list)
    edns_options: List[EdnsOption] = field(default_factory=list)
    #: transport marker: True = sent over a reliable stream (no size
    #: limit); False = datagram, subject to EDNS-size truncation
    via_tcp: bool = False

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def query(
        cls,
        name: Name,
        rrtype: RRType,
        recursion_desired: bool = True,
        msg_id: Optional[int] = None,
    ) -> "Message":
        flags = Flags.RD if recursion_desired else Flags(0)
        kwargs = {} if msg_id is None else {"id": msg_id}
        return cls(question=Question(name, rrtype), flags=flags, **kwargs)

    def make_response(self, rcode: RCode = RCode.NOERROR) -> "Message":
        """A response skeleton echoing this query's ID and question."""
        flags = Flags.QR
        if self.flags & Flags.RD:
            flags |= Flags.RD | Flags.RA
        return Message(question=self.question, id=self.id, flags=flags, rcode=rcode)

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------
    @property
    def is_response(self) -> bool:
        return bool(self.flags & Flags.QR)

    @property
    def is_query(self) -> bool:
        return not self.is_response

    @property
    def is_truncated(self) -> bool:
        return bool(self.flags & Flags.TC)

    def truncate(self) -> "Message":
        """A TC-flagged copy with all record sections dropped, as a UDP
        responder sends when the full answer exceeds the payload size
        (RFC 1035 / RFC 6891); the client retries over TCP."""
        return Message(
            question=self.question,
            id=self.id,
            opcode=self.opcode,
            flags=self.flags | Flags.TC,
            rcode=self.rcode,
            edns_options=list(self.edns_options),
        )

    @property
    def is_referral(self) -> bool:
        """A NOERROR response with no answer but NS records in authority
        (a delegation pointing the resolver at a child zone)."""
        return (
            self.is_response
            and self.rcode == RCode.NOERROR
            and not self.answers
            and any(rrset.rrtype == RRType.NS for rrset in self.authority)
        )

    @property
    def is_nodata(self) -> bool:
        """NOERROR, empty answer, no delegation: the name exists but has
        no records of the queried type."""
        return (
            self.is_response
            and self.rcode == RCode.NOERROR
            and not self.answers
            and not self.is_referral
        )

    def answer_rrset(self, rrtype: Optional[RRType] = None) -> Optional[RRSet]:
        """First answer RRset, optionally filtered by type."""
        for rrset in self.answers:
            if rrtype is None or rrset.rrtype == rrtype:
                return rrset
        return None

    def find_edns(self, code: int) -> Optional[EdnsOption]:
        return find_option(self.edns_options, code)

    def wire_length(self) -> int:
        """Approximate uncompressed message size (for transport stats)."""
        size = 12 + self.question.wire_length()
        for section in (self.answers, self.authority, self.additional):
            size += sum(rrset.wire_length() for rrset in section)
        if self.edns_options:
            size += 11 + sum(opt.wire_length() for opt in self.edns_options)
        return size

    def section_counts(self) -> str:
        return (
            f"an={len(self.answers)} au={len(self.authority)} ad={len(self.additional)}"
        )

    def __str__(self) -> str:
        kind = "response" if self.is_response else "query"
        return f"<{kind} id={self.id} {self.question} {self.rcode} {self.section_counts()}>"
