"""A master-file-style zone text parser.

Supports the subset of RFC 1035 master syntax that the paper's appendix
zone files (Figure 12) use, plus what realistic test zones need:

- ``$ORIGIN`` and ``$TTL`` directives;
- ``@`` for the origin, relative and absolute owner names;
- blank owner fields (inherit the previous owner);
- ``;`` comments and ``//`` comments (the paper's listings use the
  latter);
- record types A, AAAA, NS, CNAME, SOA, TXT, MX, PTR;
- optional TTL and class fields in either order.

The parser returns a fully-built :class:`~repro.dnscore.zone.Zone`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.dnscore.errors import ZoneError
from repro.dnscore.name import Name
from repro.dnscore.rdata import (
    AAAAData,
    AData,
    CNAMEData,
    MXData,
    NSData,
    PTRData,
    RData,
    SOAData,
    TXTData,
)
from repro.dnscore.zone import Zone

_TYPES = {"A", "AAAA", "NS", "CNAME", "SOA", "TXT", "MX", "PTR"}


def _strip_comment(line: str) -> str:
    for marker in (";", "//"):
        idx = line.find(marker)
        if idx >= 0:
            line = line[:idx]
    return line.rstrip()


def _is_ttl(token: str) -> bool:
    return token.isdigit()


def parse_zone(text: str, origin: Optional[str] = None, default_ttl: int = 300) -> Zone:
    """Parse zone text into a :class:`Zone`.

    ``origin`` may be supplied by the caller or via a ``$ORIGIN``
    directive (or the paper-style ``>zone <name> @ <addr>`` header, whose
    address part is ignored here -- server placement is the simulator's
    concern).
    """
    lines = text.splitlines()
    zone: Optional[Zone] = None
    current_origin: Optional[Name] = Name.from_text(origin) if origin else None
    ttl = default_ttl
    last_owner: Optional[str] = None

    def ensure_zone() -> Zone:
        nonlocal zone
        if zone is None:
            if current_origin is None:
                raise ZoneError("no $ORIGIN given and no origin argument supplied")
            zone = Zone(current_origin, default_ttl=ttl)
        return zone

    for lineno, raw in enumerate(lines, start=1):
        line = _strip_comment(raw)
        if not line.strip():
            continue
        leading_ws = line[0] in " \t"
        tokens = line.split()

        if tokens[0].upper() == "$ORIGIN":
            current_origin = Name.from_text(tokens[1])
            continue
        if tokens[0].upper() == "$TTL":
            ttl = int(tokens[1])
            if zone is not None:
                zone.default_ttl = ttl
            continue
        if tokens[0].startswith(">zone"):
            # Paper-style header: ">zone target-domain @ 127.0.0.1"
            current_origin = Name.from_text(tokens[1])
            continue

        z = ensure_zone()

        if leading_ws:
            owner = last_owner
            if owner is None:
                raise ZoneError(f"line {lineno}: no previous owner to inherit")
        else:
            owner = tokens.pop(0)
            last_owner = owner

        record_ttl = ttl
        # Optional TTL and/or class before the type, in either order.
        while tokens and tokens[0].upper() not in _TYPES:
            token = tokens.pop(0)
            if _is_ttl(token):
                record_ttl = int(token)
            elif token.upper() == "IN":
                continue
            else:
                raise ZoneError(f"line {lineno}: unexpected token {token!r}")
        if not tokens:
            raise ZoneError(f"line {lineno}: missing record type")

        rrtype = tokens.pop(0).upper()
        rdata = _parse_rdata(z, rrtype, tokens, lineno)
        z.add(owner, rdata, ttl=record_ttl)

    if zone is None:
        raise ZoneError("zone text contained no records")
    return zone


def _parse_rdata(zone: Zone, rrtype: str, tokens: List[str], lineno: int) -> RData:
    def need(count: int) -> None:
        if len(tokens) < count:
            raise ZoneError(f"line {lineno}: {rrtype} needs {count} field(s)")

    if rrtype == "A":
        need(1)
        return AData(tokens[0])
    if rrtype == "AAAA":
        need(1)
        return AAAAData(tokens[0])
    if rrtype == "NS":
        need(1)
        return NSData(zone._absolute(tokens[0]))
    if rrtype == "CNAME":
        need(1)
        return CNAMEData(zone._absolute(tokens[0]))
    if rrtype == "PTR":
        need(1)
        return PTRData(zone._absolute(tokens[0]))
    if rrtype == "MX":
        need(2)
        return MXData(int(tokens[0]), zone._absolute(tokens[1]))
    if rrtype == "TXT":
        need(1)
        text = " ".join(tokens)
        return TXTData(text.strip('"'))
    if rrtype == "SOA":
        need(7)
        return SOAData(
            mname=zone._absolute(tokens[0]),
            rname=zone._absolute(tokens[1]),
            serial=int(tokens[2]),
            refresh=int(tokens[3]),
            retry=int(tokens[4]),
            expire=int(tokens[5]),
            minimum=int(tokens[6]),
        )
    raise ZoneError(f"line {lineno}: unsupported record type {rrtype}")
