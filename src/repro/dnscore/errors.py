"""Exception hierarchy for the DNS data layer."""

from __future__ import annotations


class DnsError(Exception):
    """Base class for all errors raised by :mod:`repro.dnscore`."""


class FormError(DnsError):
    """A message or name is structurally malformed."""


class NameTooLong(FormError):
    """A domain name exceeds RFC 1035 limits (255 octets / 63 per label)."""


class WireDecodeError(FormError):
    """The wire codec encountered bytes it cannot decode."""


class ZoneError(DnsError):
    """A zone is inconsistent (e.g. record out of zone, missing SOA)."""
