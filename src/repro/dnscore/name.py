"""Domain names per RFC 1035 section 3.1.

``Name`` is an immutable sequence of labels ordered from the *most
specific* label to the root, e.g. ``www.example.com.`` has labels
``("www", "example", "com")``.  Comparison and hashing are
case-insensitive, as required for every lookup structure in the system
(caches, zones, rate-limiter tables).

Canonical DNS ordering (RFC 4034 section 6.1, labels compared from the
root down) is implemented via :meth:`Name.canonical_key`; it is what zone
lookup uses to find predecessors and closest enclosers.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple, Union

from repro.dnscore.errors import FormError, NameTooLong

MAX_LABEL_LENGTH = 63
MAX_NAME_LENGTH = 255


def _normalize_label(label: str) -> str:
    if not label:
        raise FormError("empty label inside a domain name")
    if len(label) > MAX_LABEL_LENGTH:
        raise NameTooLong(f"label {label[:16]!r}... exceeds {MAX_LABEL_LENGTH} octets")
    return label.lower()


class Name:
    """An immutable, case-insensitive domain name.

    >>> n = Name.from_text("WWW.Example.COM.")
    >>> str(n)
    'www.example.com.'
    >>> n.is_subdomain_of(Name.from_text("example.com."))
    True
    """

    __slots__ = ("_labels", "_hash")

    def __init__(self, labels: Iterable[str]) -> None:
        normalized = tuple(_normalize_label(lbl) for lbl in labels)
        wire_len = sum(len(lbl) + 1 for lbl in normalized) + 1
        if wire_len > MAX_NAME_LENGTH:
            raise NameTooLong(f"name would be {wire_len} octets on the wire")
        self._labels = normalized
        self._hash = hash(normalized)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_text(cls, text: str) -> "Name":
        """Parse a textual name. A trailing dot is accepted and implied."""
        text = text.strip()
        if text in (".", ""):
            return ROOT
        if text.endswith("."):
            text = text[:-1]
        return cls(text.split("."))

    @classmethod
    def root(cls) -> "Name":
        return ROOT

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def labels(self) -> Tuple[str, ...]:
        return self._labels

    def __len__(self) -> int:
        """Number of labels (the root has zero)."""
        return len(self._labels)

    def __iter__(self) -> Iterator[str]:
        return iter(self._labels)

    @property
    def is_root(self) -> bool:
        return not self._labels

    @property
    def is_wildcard(self) -> bool:
        """True when the owner name starts with the ``*`` label (RFC 4592)."""
        return bool(self._labels) and self._labels[0] == "*"

    def parent(self) -> "Name":
        """The name with the most specific label removed.

        Raises :class:`FormError` on the root, which has no parent.
        """
        if self.is_root:
            raise FormError("the root name has no parent")
        return Name(self._labels[1:])

    def child(self, label: str) -> "Name":
        """Prepend ``label``, producing a direct subdomain of this name."""
        return Name((label,) + self._labels)

    def concat(self, suffix: "Name") -> "Name":
        """Concatenate: ``Name(('a',)).concat(example.com.) == a.example.com.``"""
        return Name(self._labels + suffix._labels)

    def relativize(self, origin: "Name") -> Tuple[str, ...]:
        """Labels of this name below ``origin``.

        ``www.example.com.`` relativized to ``example.com.`` is
        ``("www",)``.  Raises :class:`FormError` if this name is not a
        subdomain of ``origin``.
        """
        if not self.is_subdomain_of(origin):
            raise FormError(f"{self} is not under {origin}")
        if len(origin) == 0:
            return self._labels
        return self._labels[: len(self._labels) - len(origin)]

    def is_subdomain_of(self, other: "Name") -> bool:
        """True if this name equals ``other`` or is below it."""
        n = len(other._labels)
        if n > len(self._labels):
            return False
        return n == 0 or self._labels[-n:] == other._labels

    def ancestors(self) -> Iterator["Name"]:
        """Yield this name, then each parent up to and including the root."""
        labels = self._labels
        for i in range(len(labels) + 1):
            yield Name(labels[i:])

    def wildcard_sibling(self) -> "Name":
        """The wildcard name at this name's parent: ``*.<parent>``.

        Used by zone lookup when checking for RFC 4592 synthesis.
        """
        return self.parent().child("*")

    def canonical_key(self) -> Tuple[str, ...]:
        """Sort key implementing canonical DNS ordering (RFC 4034 6.1):
        labels compared right-to-left (root side first)."""
        return tuple(reversed(self._labels))

    def wire_length(self) -> int:
        """Uncompressed wire-format length in octets."""
        return sum(len(lbl) + 1 for lbl in self._labels) + 1

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Name):
            return NotImplemented
        return self._labels == other._labels

    def __lt__(self, other: "Name") -> bool:
        return self.canonical_key() < other.canonical_key()

    def __le__(self, other: "Name") -> bool:
        return self.canonical_key() <= other.canonical_key()

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        if self.is_root:
            return "."
        return ".".join(self._labels) + "."

    def __repr__(self) -> str:
        return f"Name({str(self)!r})"


#: The DNS root name (zero labels).
ROOT = Name(())


NameLike = Union[Name, str]


def as_name(value: NameLike) -> Name:
    """Coerce strings to :class:`Name`; pass names through unchanged."""
    if isinstance(value, Name):
        return value
    return Name.from_text(value)
