"""Resource records and RRsets.

An :class:`RRSet` groups all records sharing an owner name, class, and
type (RFC 2181 section 5) -- the unit of caching and of zone lookup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple

from repro.dnscore.name import Name
from repro.dnscore.rdata import RData, RRType


@dataclass(frozen=True)
class ResourceRecord:
    """A single DNS resource record (IN class is implied throughout)."""

    name: Name
    ttl: int
    rdata: RData

    @property
    def rrtype(self) -> RRType:
        return self.rdata.rrtype

    def wire_length(self) -> int:
        """Uncompressed wire size: owner + TYPE/CLASS/TTL/RDLENGTH + rdata."""
        return self.name.wire_length() + 10 + self.rdata.wire_length()

    def with_name(self, name: Name) -> "ResourceRecord":
        """Copy with a different owner name (wildcard synthesis)."""
        return ResourceRecord(name=name, ttl=self.ttl, rdata=self.rdata)

    def to_text(self) -> str:
        return f"{self.name} {self.ttl} IN {self.rrtype} {self.rdata.to_text()}"

    def __str__(self) -> str:
        return self.to_text()


class RRSet:
    """All records with the same (owner, type).

    The TTL of the set is the minimum record TTL, which is what caches
    must honour.
    """

    __slots__ = ("name", "rrtype", "_records")

    def __init__(self, name: Name, rrtype: RRType, records: Iterable[ResourceRecord] = ()) -> None:
        self.name = name
        self.rrtype = rrtype
        self._records: List[ResourceRecord] = []
        for rec in records:
            self.add(rec)

    @classmethod
    def of(cls, *records: ResourceRecord) -> "RRSet":
        if not records:
            raise ValueError("RRSet.of() needs at least one record")
        rrset = cls(records[0].name, records[0].rrtype)
        for rec in records:
            rrset.add(rec)
        return rrset

    def add(self, record: ResourceRecord) -> None:
        if record.name != self.name:
            raise ValueError(f"record owner {record.name} does not match RRSet owner {self.name}")
        if record.rrtype != self.rrtype:
            raise ValueError(f"record type {record.rrtype} does not match RRSet type {self.rrtype}")
        if record not in self._records:
            self._records.append(record)

    @property
    def records(self) -> Tuple[ResourceRecord, ...]:
        return tuple(self._records)

    @property
    def ttl(self) -> int:
        return min(rec.ttl for rec in self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[ResourceRecord]:
        return iter(self._records)

    def __bool__(self) -> bool:
        return bool(self._records)

    def wire_length(self) -> int:
        return sum(rec.wire_length() for rec in self._records)

    def with_name(self, name: Name) -> "RRSet":
        """Copy the whole set under a new owner (wildcard synthesis)."""
        return RRSet(name, self.rrtype, (rec.with_name(name) for rec in self._records))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RRSet):
            return NotImplemented
        return (
            self.name == other.name
            and self.rrtype == other.rrtype
            and set(self._records) == set(other._records)
        )

    def __repr__(self) -> str:
        return f"RRSet({self.name} {self.rrtype} x{len(self._records)})"
