"""Wire-format codec with RFC 1035 name compression.

The simulator passes :class:`~repro.dnscore.message.Message` objects
around directly (serialisation would only burn CPU), but a real DCC
middlebox intercepts raw packets, so the library ships a faithful codec:

- names are compressed with 0xC0 pointers against earlier occurrences;
- all rdata types in :mod:`repro.dnscore.rdata` round-trip;
- EDNS options are carried in an OPT pseudo-record in the additional
  section, exactly as on the real wire.

The codec doubles as the source of truth for message sizes in transport
statistics and for property tests (encode-decode round-trips under
hypothesis).
"""

from __future__ import annotations

import ipaddress
import struct
from typing import Dict, List, Optional, Tuple

from repro.dnscore.edns import EDNS_UDP_SIZE, EdnsOption
from repro.dnscore.errors import WireDecodeError
from repro.dnscore.message import Flags, Message, Question
from repro.dnscore.name import Name, ROOT
from repro.dnscore.rdata import (
    AAAAData,
    AData,
    CNAMEData,
    MXData,
    NSData,
    NSECData,
    Opcode,
    PTRData,
    RCode,
    RData,
    RRType,
    SOAData,
    TXTData,
)
from repro.dnscore.rrset import ResourceRecord, RRSet

_MAX_POINTER_OFFSET = 0x3FFF


class _Writer:
    """Accumulates wire bytes and tracks name-compression offsets."""

    def __init__(self) -> None:
        self._chunks: List[bytes] = []
        self._length = 0
        self._name_offsets: Dict[Tuple[str, ...], int] = {}

    @property
    def length(self) -> int:
        return self._length

    def write(self, data: bytes) -> None:
        self._chunks.append(data)
        self._length += len(data)

    def write_u8(self, value: int) -> None:
        self.write(struct.pack("!B", value))

    def write_u16(self, value: int) -> None:
        self.write(struct.pack("!H", value & 0xFFFF))

    def write_u32(self, value: int) -> None:
        self.write(struct.pack("!I", value & 0xFFFFFFFF))

    def write_name(self, name: Name, compress: bool = True) -> None:
        """Emit ``name``, reusing a pointer to any previously written
        suffix when compression is allowed."""
        labels = name.labels
        for i in range(len(labels)):
            suffix = labels[i:]
            offset = self._name_offsets.get(suffix)
            if compress and offset is not None:
                self.write_u16(0xC000 | offset)
                return
            if self._length <= _MAX_POINTER_OFFSET:
                self._name_offsets[suffix] = self._length
            label = labels[i].encode("ascii")
            self.write_u8(len(label))
            self.write(label)
        self.write_u8(0)

    def getvalue(self) -> bytes:
        return b"".join(self._chunks)


class _Reader:
    """Sequential reader with compression-pointer chasing."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    @property
    def pos(self) -> int:
        return self._pos

    def remaining(self) -> int:
        return len(self._data) - self._pos

    def read(self, count: int) -> bytes:
        if self.remaining() < count:
            raise WireDecodeError(f"truncated message: wanted {count} bytes, have {self.remaining()}")
        chunk = self._data[self._pos : self._pos + count]
        self._pos += count
        return chunk

    def read_u8(self) -> int:
        return self.read(1)[0]

    def read_u16(self) -> int:
        return struct.unpack("!H", self.read(2))[0]

    def read_u32(self) -> int:
        return struct.unpack("!I", self.read(4))[0]

    def read_name(self) -> Name:
        labels: List[str] = []
        pos = self._pos
        jumped = False
        hops = 0
        while True:
            if pos >= len(self._data):
                raise WireDecodeError("name runs past end of message")
            length = self._data[pos]
            if length & 0xC0 == 0xC0:
                if pos + 1 >= len(self._data):
                    raise WireDecodeError("truncated compression pointer")
                target = ((length & 0x3F) << 8) | self._data[pos + 1]
                if not jumped:
                    self._pos = pos + 2
                    jumped = True
                if target >= pos:
                    raise WireDecodeError("compression pointer does not point backwards")
                pos = target
                hops += 1
                if hops > 128:
                    raise WireDecodeError("compression pointer loop")
            elif length == 0:
                if not jumped:
                    self._pos = pos + 1
                return Name(tuple(labels)) if labels else ROOT
            elif length & 0xC0:
                raise WireDecodeError(f"reserved label type 0x{length:02x}")
            else:
                start = pos + 1
                end = start + length
                if end > len(self._data):
                    raise WireDecodeError("label runs past end of message")
                try:
                    labels.append(self._data[start:end].decode("ascii"))
                except UnicodeDecodeError as exc:
                    raise WireDecodeError(f"non-ascii label bytes: {exc}") from exc
                pos = end


# ----------------------------------------------------------------------
# rdata codecs
# ----------------------------------------------------------------------

def _encode_rdata(writer: _Writer, rdata: RData) -> None:
    """Append RDLENGTH + RDATA for ``rdata``.

    Names inside rdata are written uncompressed: RFC 3597 forbids
    compressing names in newer types, and doing so uniformly keeps
    RDLENGTH computable before writing.
    """
    body = _Writer()
    if isinstance(rdata, AData):
        body.write(ipaddress.IPv4Address(rdata.address).packed)
    elif isinstance(rdata, AAAAData):
        body.write(ipaddress.IPv6Address(rdata.address).packed)
    elif isinstance(rdata, (NSData, CNAMEData, PTRData)):
        body.write_name(rdata.target, compress=False)
    elif isinstance(rdata, SOAData):
        body.write_name(rdata.mname, compress=False)
        body.write_name(rdata.rname, compress=False)
        for value in (rdata.serial, rdata.refresh, rdata.retry, rdata.expire, rdata.minimum):
            body.write_u32(value)
    elif isinstance(rdata, MXData):
        body.write_u16(rdata.preference)
        body.write_name(rdata.exchange, compress=False)
    elif isinstance(rdata, NSECData):
        body.write_name(rdata.next_name, compress=False)
        body.write_u16(0)  # empty type bitmap (simplified NSEC)
    elif isinstance(rdata, TXTData):
        text = rdata.text.encode("utf-8")
        for i in range(0, max(len(text), 1), 255):
            chunk = text[i : i + 255]
            body.write_u8(len(chunk))
            body.write(chunk)
    else:
        raise WireDecodeError(f"cannot encode rdata type {type(rdata).__name__}")
    payload = body.getvalue()
    writer.write_u16(len(payload))
    writer.write(payload)


def _decode_rdata(reader: _Reader, rrtype: RRType, rdlength: int) -> RData:
    end = reader.pos + rdlength
    if rrtype == RRType.A:
        rdata: RData = AData(str(ipaddress.IPv4Address(reader.read(4))))
    elif rrtype == RRType.AAAA:
        rdata = AAAAData(str(ipaddress.IPv6Address(reader.read(16))))
    elif rrtype == RRType.NS:
        rdata = NSData(reader.read_name())
    elif rrtype == RRType.CNAME:
        rdata = CNAMEData(reader.read_name())
    elif rrtype == RRType.PTR:
        rdata = PTRData(reader.read_name())
    elif rrtype == RRType.SOA:
        mname = reader.read_name()
        rname = reader.read_name()
        serial, refresh, retry, expire, minimum = (
            reader.read_u32() for _ in range(5)
        )
        rdata = SOAData(mname, rname, serial, refresh, retry, expire, minimum)
    elif rrtype == RRType.MX:
        pref = reader.read_u16()
        rdata = MXData(pref, reader.read_name())
    elif rrtype == RRType.NSEC:
        next_name = reader.read_name()
        reader.read_u16()  # skip the (empty) type bitmap
        rdata = NSECData(next_name)
    elif rrtype == RRType.TXT:
        parts = []
        while reader.pos < end:
            length = reader.read_u8()
            try:
                parts.append(reader.read(length).decode("utf-8"))
            except UnicodeDecodeError as exc:
                raise WireDecodeError(f"invalid TXT bytes: {exc}") from exc
        rdata = TXTData("".join(parts))
    else:
        raise WireDecodeError(f"cannot decode rdata type {rrtype}")
    if reader.pos != end:
        raise WireDecodeError(f"rdata length mismatch for {rrtype}: {reader.pos} != {end}")
    return rdata


# ----------------------------------------------------------------------
# message codec
# ----------------------------------------------------------------------

def _encode_record(writer: _Writer, record: ResourceRecord) -> None:
    writer.write_name(record.name)
    writer.write_u16(int(record.rrtype))
    writer.write_u16(1)  # class IN
    writer.write_u32(record.ttl)
    _encode_rdata(writer, record.rdata)


def _encode_opt(writer: _Writer, options: List[EdnsOption], rcode: RCode) -> None:
    """EDNS OPT pseudo-record: root owner, TYPE=OPT, CLASS=payload size,
    TTL carries extended rcode bits (zero here: all our rcodes fit)."""
    writer.write_u8(0)  # root owner name
    writer.write_u16(int(RRType.OPT))
    writer.write_u16(EDNS_UDP_SIZE)
    writer.write_u32(0)
    body = _Writer()
    for opt in options:
        body.write_u16(opt.code)
        body.write_u16(len(opt.payload))
        body.write(opt.payload)
    payload = body.getvalue()
    writer.write_u16(len(payload))
    writer.write(payload)


def encode_message(message: Message) -> bytes:
    """Serialise ``message`` to RFC 1035 wire format."""
    writer = _Writer()
    writer.write_u16(message.id)
    flag_word = int(message.flags) | (int(message.opcode) << 11) | int(message.rcode)
    writer.write_u16(flag_word)
    writer.write_u16(1)  # QDCOUNT
    ancount = sum(len(rrset) for rrset in message.answers)
    nscount = sum(len(rrset) for rrset in message.authority)
    arcount = sum(len(rrset) for rrset in message.additional)
    if message.edns_options or True:
        # Always attach an OPT record: every server in this system is
        # EDNS-capable, and DCC relies on options being available.
        arcount += 1
    writer.write_u16(ancount)
    writer.write_u16(nscount)
    writer.write_u16(arcount)
    writer.write_name(message.question.name)
    writer.write_u16(int(message.question.rrtype))
    writer.write_u16(1)
    for section in (message.answers, message.authority, message.additional):
        for rrset in section:
            for record in rrset:
                _encode_record(writer, record)
    _encode_opt(writer, message.edns_options, message.rcode)
    return writer.getvalue()


def _decode_record(reader: _Reader) -> Tuple[Optional[ResourceRecord], List[EdnsOption]]:
    """Decode one record; OPT records come back as (None, options)."""
    name = reader.read_name()
    rrtype_raw = reader.read_u16()
    klass = reader.read_u16()
    ttl = reader.read_u32()
    rdlength = reader.read_u16()
    if rrtype_raw == int(RRType.OPT):
        end = reader.pos + rdlength
        options: List[EdnsOption] = []
        while reader.pos < end:
            code = reader.read_u16()
            length = reader.read_u16()
            options.append(EdnsOption(code, reader.read(length)))
        return None, options
    if klass != 1:
        raise WireDecodeError(f"unsupported class {klass}")
    rdata = _decode_rdata(reader, _enum(RRType, rrtype_raw, "record type"), rdlength)
    return ResourceRecord(name=name, ttl=ttl, rdata=rdata), []


def _enum(enum_type, value, what):
    """Enum conversion that reports malformed input as a decode error."""
    try:
        return enum_type(value)
    except ValueError as exc:
        raise WireDecodeError(f"unknown {what} {value}") from exc


def decode_message(data: bytes) -> Message:
    """Parse wire bytes back into a :class:`Message`.

    Adjacent records with the same (owner, type) are regrouped into
    RRsets per section.
    """
    reader = _Reader(data)
    msg_id = reader.read_u16()
    flag_word = reader.read_u16()
    qdcount = reader.read_u16()
    if qdcount != 1:
        raise WireDecodeError(f"expected exactly one question, got {qdcount}")
    ancount = reader.read_u16()
    nscount = reader.read_u16()
    arcount = reader.read_u16()
    qname = reader.read_name()
    qtype = _enum(RRType, reader.read_u16(), "question type")
    qclass = reader.read_u16()
    if qclass != 1:
        raise WireDecodeError(f"unsupported question class {qclass}")

    message = Message(
        question=Question(qname, qtype),
        id=msg_id,
        opcode=_enum(Opcode, (flag_word >> 11) & 0xF, "opcode"),
        flags=Flags(flag_word & 0x87F0),
        rcode=_enum(RCode, flag_word & 0xF, "rcode"),
    )

    def read_section(count: int, target: List[RRSet]) -> None:
        groups: Dict[Tuple[Name, RRType], RRSet] = {}
        for _ in range(count):
            record, options = _decode_record(reader)
            if record is None:
                message.edns_options.extend(options)
                continue
            key = (record.name, record.rrtype)
            if key not in groups:
                groups[key] = RRSet(record.name, record.rrtype)
                target.append(groups[key])
            groups[key].add(record)

    read_section(ancount, message.answers)
    read_section(nscount, message.authority)
    read_section(arcount, message.additional)
    if reader.remaining():
        raise WireDecodeError(f"{reader.remaining()} trailing bytes after message")
    return message
