"""Generic data structures shared across the repro library.

This package holds the small, self-contained containers that the DCC
scheduler and the simulation substrate are built on:

- :class:`repro.util.ordmap.OrderedMap` -- a treap-backed ordered map with
  O(log n) insert/remove/min, used for MOPI-FQ's output sequence
  (``out_seq`` in the paper's Appendix B pseudocode).
- :class:`repro.util.ringbuf.RingBuffer` -- a fixed-size ring buffer, used
  for MOPI-FQ's per-queue scheduling-round tail pointers
  (``round_tails``).
- :class:`repro.util.sliding.SlidingWindowCounter` and
  :class:`repro.util.sliding.SlidingWindowRatio` -- windowed counters used
  by DCC's anomaly monitoring.
- :class:`repro.util.tokenbucket.TokenBucket` and
  :class:`repro.util.tokenbucket.WindowedCounter` -- rate-limiting
  primitives shared by the server-side limiter tables and DCC's
  per-channel capacity control.
- :func:`repro.util.seeds.derive_seed` -- hash-based sub-seed
  derivation shared by the fuzzer's iteration streams and the fluid
  layer's promotion sub-seeds.
"""

from repro.util.ordmap import OrderedMap
from repro.util.ringbuf import RingBuffer
from repro.util.seeds import derive_seed
from repro.util.sliding import SlidingWindowCounter, SlidingWindowRatio
from repro.util.tokenbucket import TokenBucket, WindowedCounter

__all__ = [
    "OrderedMap",
    "RingBuffer",
    "SlidingWindowCounter",
    "SlidingWindowRatio",
    "TokenBucket",
    "WindowedCounter",
    "derive_seed",
]
