"""Token-bucket and fixed-window rate-limiting primitives.

These live in :mod:`repro.util` (not :mod:`repro.server`) because both
the server-side rate-limiter tables *and* DCC's per-channel capacity
control are built on them: "RL is an indispensable measure to mitigate
DoS attacks in general, whereas it also enables an attacker to congest
a rate-limited channel at a substantially lower cost than overloading
an entire server" (Section 2.3), and inside DCC a token bucket controls
each output channel's capacity (Section 3.2.1).  Keeping them below the
``server``/``dcc`` layers lets ``dcc`` use them without a layering
violation (reprolint R6: ``dcc`` must not import ``server``).

Everything is driven by virtual time passed in by the caller; no wall
clock is read.
"""

from __future__ import annotations

from typing import Optional

from repro import sanitize as simsan

#: Slack absorbing float rounding in refill arithmetic.  Without it, a
#: deficit of ~1e-16 tokens yields a "next available" time that rounds
#: back to *now*, and schedulers that re-poll at that time spin forever.
_EPSILON = 1e-9


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    Buckets start full, which matches how RL implementations admit an
    initial burst after idle periods (and is what produces the
    fluctuation patterns the paper's measurements observe).
    """

    __slots__ = ("rate", "burst", "_tokens", "_stamp")

    def __init__(self, rate: float, burst: Optional[float] = None) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else float(rate)
        if self.burst <= 0:
            raise ValueError(f"burst must be positive, got {burst}")
        self._tokens = self.burst
        self._stamp = 0.0

    def _refill(self, now: float) -> None:
        if now > self._stamp:
            self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
            self._stamp = now
        if simsan.ENABLED:
            self._sanitize()

    def _sanitize(self) -> None:
        """SimSan: the token count must stay within [0, burst]."""
        if self._tokens < -_EPSILON:
            simsan.fail(f"token bucket went negative: {self._tokens!r} (rate={self.rate})")
        if self._tokens > self.burst + _EPSILON:
            simsan.fail(
                f"token bucket overfilled: {self._tokens!r} > burst {self.burst!r}"
            )

    def tokens(self, now: float) -> float:
        self._refill(now)
        return self._tokens

    def available(self, now: float, amount: float = 1.0) -> bool:
        return self.tokens(now) >= amount - _EPSILON

    def try_consume(self, now: float, amount: float = 1.0) -> bool:
        """Take ``amount`` tokens if present; False (and no change) if not."""
        self._refill(now)
        if self._tokens >= amount - _EPSILON:
            self._tokens = max(0.0, self._tokens - amount)
            if simsan.ENABLED:
                self._sanitize()
            return True
        return False

    def next_available(self, now: float, amount: float = 1.0) -> float:
        """Earliest virtual time at which ``amount`` tokens will exist.

        MOPI-FQ uses this as the "predicted future time when the channel
        becomes available again" for relocating congested channels in its
        output sequence (Appendix B.1.2).  The result is guaranteed to be
        strictly in the future whenever consumption would fail now.
        """
        self._refill(now)
        if self._tokens >= amount - _EPSILON:
            return now
        return now + max((amount - self._tokens) / self.rate, _EPSILON)


class WindowedCounter:
    """Fixed-window counting limiter (BIND response-rate-limiting style).

    The first ``rate * window`` messages of each window pass; everything
    after drops until the next window starts.  Unlike a token bucket,
    this is insensitive to arrival burstiness *within* a window -- which
    is exactly why bursty amplification traffic starves uniformly-paced
    benign traffic behind the same key (the paper's Figure 4 collapse).
    """

    __slots__ = ("rate", "window", "_window_index", "_count")

    def __init__(self, rate: float, window: float = 1.0) -> None:
        if rate <= 0 or window <= 0:
            raise ValueError("rate and window must be positive")
        self.rate = rate
        self.window = window
        self._window_index = -1
        self._count = 0.0

    def _roll(self, now: float) -> None:
        index = int(now / self.window)
        if index != self._window_index:
            self._window_index = index
            self._count = 0.0

    def try_consume(self, now: float, amount: float = 1.0) -> bool:
        self._roll(now)
        if self._count + amount <= self.rate * self.window + _EPSILON:
            self._count += amount
            if simsan.ENABLED and self._count < -_EPSILON:
                simsan.fail(f"window counter went negative: {self._count!r}")
            return True
        return False

    def available(self, now: float, amount: float = 1.0) -> bool:
        self._roll(now)
        return self._count + amount <= self.rate * self.window + _EPSILON

    def next_available(self, now: float, amount: float = 1.0) -> float:
        if self.available(now, amount):
            return now
        return (self._window_index + 1) * self.window
