"""Deterministic sub-seed derivation shared across subsystems.

One master seed must fan out into many independent PRNG streams --
fuzz iterations, fluid-cohort slices, promoted packet clients -- without
any stream depending on Python's per-process ``hash()`` or on draw
order.  The scheme is the one the fuzzer introduced (PR 5): hash the
master seed together with a colon-joined label path through SHA-256 and
take the first 8 bytes as a big-endian integer.  Identical labels yield
identical sub-seeds on every machine and interpreter, and distinct
labels yield (cryptographically) independent ones.

``derive_seed(master, part)`` is bit-compatible with the original
``repro.fuzz.generate.derive_seed`` for a single integer part, so the
fuzzer's historical corpus and verdict digests are unaffected by the
relocation; extra parts extend the path: ``derive_seed(s, "cohort",
"heavy", 3)`` hashes ``"{s}:cohort:heavy:3"``.
"""

from __future__ import annotations

import hashlib
from typing import Union

Part = Union[int, str]


def derive_seed(master_seed: int, *parts: Part) -> int:
    """Stable sub-seed for the stream named by ``parts`` under ``master_seed``.

    Independent of ``PYTHONHASHSEED``, platform, and interpreter; the
    empty path returns a hash of the master seed alone, so even
    ``derive_seed(s)`` is safe to hand to ``random.Random``.
    """
    path = ":".join(str(part) for part in parts)
    material = f"{master_seed}:{path}" if path else f"{master_seed}"
    digest = hashlib.sha256(material.encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big")
