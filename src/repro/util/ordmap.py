"""A treap-backed ordered map.

MOPI-FQ (paper Appendix B) needs an ``ordered_map<time, addr>`` for its
output sequence ``out_seq``: output channels are kept sorted by the
arrival time of the message at the front of their queue (or, when a
channel is congested, by the predicted time at which it becomes available
again).  Every scheduling decision reads the minimum element, and elements
are relocated whenever a queue's head changes -- both must cost
``O(log m)`` for ``m`` active channels, which is exactly where MOPI-FQ's
logarithmic complexity comes from.

The standard library has no ordered map, so this module provides one as a
`treap <https://en.wikipedia.org/wiki/Treap>`_: a binary search tree whose
heap priorities are drawn from a deterministic per-instance PRNG, giving
expected O(log n) insert / remove / min / successor without rebalancing
bookkeeping.

Keys must be mutually comparable.  Duplicate keys are rejected --
callers that need duplicates (MOPI-FQ does: two queue heads can share an
arrival timestamp) should key on a ``(time, tiebreak)`` tuple.
"""

from __future__ import annotations

import random
from typing import Any, Generic, Iterator, List, Optional, Protocol, Tuple, TypeVar


class _SupportsLT(Protocol):
    """Anything usable as a treap key: totally ordered via ``<``."""

    def __lt__(self, other: Any, /) -> bool: ...


K = TypeVar("K", bound=_SupportsLT)
V = TypeVar("V")


class _Node(Generic[K, V]):
    __slots__ = ("key", "value", "prio", "left", "right", "size")

    def __init__(self, key: K, value: V, prio: float) -> None:
        self.key = key
        self.value = value
        self.prio = prio
        self.left: Optional[_Node[K, V]] = None
        self.right: Optional[_Node[K, V]] = None
        self.size = 1


def _size(node: Optional[_Node[K, V]]) -> int:
    return node.size if node is not None else 0


def _pull(node: _Node[K, V]) -> None:
    node.size = 1 + _size(node.left) + _size(node.right)


def _merge(a: Optional[_Node[K, V]], b: Optional[_Node[K, V]]) -> Optional[_Node[K, V]]:
    """Merge two treaps where every key in ``a`` < every key in ``b``."""
    if a is None:
        return b
    if b is None:
        return a
    if a.prio < b.prio:
        a.right = _merge(a.right, b)
        _pull(a)
        return a
    b.left = _merge(a, b.left)
    _pull(b)
    return b


def _split(
    node: Optional[_Node[K, V]], key: K
) -> Tuple[Optional[_Node[K, V]], Optional[_Node[K, V]]]:
    """Split into (keys < key, keys >= key)."""
    if node is None:
        return None, None
    if node.key < key:
        left, right = _split(node.right, key)
        node.right = left
        _pull(node)
        return node, right
    left, right = _split(node.left, key)
    node.left = right
    _pull(node)
    return left, node


class OrderedMap(Generic[K, V]):
    """Ordered key -> value map with O(log n) operations.

    >>> om = OrderedMap()
    >>> om[3] = "c"; om[1] = "a"; om[2] = "b"
    >>> om.min_item()
    (1, 'a')
    >>> del om[1]
    >>> list(om)
    [2, 3]
    """

    def __init__(self, seed: int = 0x5EED) -> None:
        self._root: Optional[_Node[K, V]] = None
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return _size(self._root)

    def __bool__(self) -> bool:
        return self._root is not None

    def __contains__(self, key: K) -> bool:
        return self._find(key) is not None

    def __getitem__(self, key: K) -> V:
        node = self._find(key)
        if node is None:
            raise KeyError(key)
        return node.value

    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        node = self._find(key)
        return node.value if node is not None else default

    def __setitem__(self, key: K, value: V) -> None:
        """Insert ``key``; if it already exists, replace its value."""
        node = self._find(key)
        if node is not None:
            node.value = value
            return
        left, right = _split(self._root, key)
        fresh = _Node(key, value, self._rng.random())
        self._root = _merge(_merge(left, fresh), right)

    def __delitem__(self, key: K) -> None:
        self._root, removed = self._remove(self._root, key)
        if not removed:
            raise KeyError(key)

    def pop(self, key: K, *default: V) -> V:
        node = self._find(key)
        if node is None:
            if default:
                return default[0]
            raise KeyError(key)
        value = node.value
        del self[key]
        return value

    def clear(self) -> None:
        self._root = None

    # ------------------------------------------------------------------
    # ordered queries
    # ------------------------------------------------------------------
    def min_item(self) -> Tuple[K, V]:
        """Return ``(key, value)`` with the smallest key."""
        node = self._root
        if node is None:
            raise KeyError("min_item() on empty OrderedMap")
        while node.left is not None:
            node = node.left
        return node.key, node.value

    def max_item(self) -> Tuple[K, V]:
        """Return ``(key, value)`` with the largest key."""
        node = self._root
        if node is None:
            raise KeyError("max_item() on empty OrderedMap")
        while node.right is not None:
            node = node.right
        return node.key, node.value

    def pop_min(self) -> Tuple[K, V]:
        """Remove and return the smallest ``(key, value)``."""
        key, value = self.min_item()
        del self[key]
        return key, value

    def succ(self, key: K) -> Optional[Tuple[K, V]]:
        """Smallest item with key strictly greater than ``key``."""
        node = self._root
        best: Optional[_Node[K, V]] = None
        while node is not None:
            if key < node.key:
                best = node
                node = node.left
            else:
                node = node.right
        return (best.key, best.value) if best is not None else None

    def __iter__(self) -> Iterator[K]:
        yield from (k for k, _ in self.items())

    def items(self) -> Iterator[Tuple[K, V]]:
        """Iterate ``(key, value)`` pairs in ascending key order.

        Iterative traversal: treaps built from adversarially ordered keys
        stay shallow in expectation, but an explicit stack avoids any
        recursion-depth concern on large maps.
        """
        stack: List[_Node[K, V]] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key, node.value
            node = node.right

    def keys(self) -> Iterator[K]:
        return iter(self)

    def values(self) -> Iterator[V]:
        yield from (v for _, v in self.items())

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _find(self, key: K) -> Optional[_Node[K, V]]:
        node = self._root
        while node is not None:
            if key < node.key:
                node = node.left
            elif node.key < key:
                node = node.right
            else:
                return node
        return None

    def _remove(
        self, node: Optional[_Node[K, V]], key: K
    ) -> Tuple[Optional[_Node[K, V]], bool]:
        if node is None:
            return None, False
        if key < node.key:
            node.left, removed = self._remove(node.left, key)
        elif node.key < key:
            node.right, removed = self._remove(node.right, key)
        else:
            return _merge(node.left, node.right), True
        if removed:
            _pull(node)
        return node, removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = ", ".join(f"{k!r}: {v!r}" for k, v in list(self.items())[:8])
        suffix = ", ..." if len(self) > 8 else ""
        return f"OrderedMap({{{preview}{suffix}}})"
