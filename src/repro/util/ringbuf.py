"""Fixed-size ring buffer indexed by absolute position.

MOPI-FQ logically divides each per-output queue into *scheduling rounds*
(paper Figure 7c).  The queue only ever holds rounds
``current_round .. current_round + MAX_ROUND - 1``, so the per-round tail
pointers are kept in a ring buffer of size ``MAX_ROUND``
(``round_tails`` in Appendix B's pseudocode): slot ``r % capacity``
belongs to round ``r``.

The buffer here is deliberately dumb -- it does not track which rounds
are valid; the scheduler owns that via ``current_round`` /
``latest_round``.  It simply maps an absolute round number onto a slot.
"""

from __future__ import annotations

from typing import Generic, List, Optional, TypeVar

T = TypeVar("T")


class RingBuffer(Generic[T]):
    """A fixed-capacity buffer addressed by absolute (monotone) indices.

    >>> rb = RingBuffer(4)
    >>> rb.set(10, "a")
    >>> rb.get(10)
    'a'
    >>> rb.get(11) is None
    True
    """

    __slots__ = ("_slots", "_capacity")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._slots: List[Optional[T]] = [None] * capacity

    @property
    def capacity(self) -> int:
        return self._capacity

    def get(self, index: int) -> Optional[T]:
        """Value stored for absolute index ``index`` (``None`` if empty)."""
        return self._slots[index % self._capacity]

    def set(self, index: int, value: T) -> None:
        self._slots[index % self._capacity] = value

    def clear_at(self, index: int) -> None:
        self._slots[index % self._capacity] = None

    def clear(self) -> None:
        for i in range(self._capacity):
            self._slots[i] = None

    def occupied(self) -> int:
        """Number of non-empty slots (diagnostics only)."""
        return sum(1 for slot in self._slots if slot is not None)

    def __len__(self) -> int:
        return self._capacity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RingBuffer(capacity={self._capacity}, occupied={self.occupied()})"
