"""Sliding-window counters for anomaly monitoring.

DCC's anomaly monitor (paper Section 3.2.2) tracks, per client, "a
collection of anomaly metrics, e.g., the amount, the rate, or the
percentage of anomalous requests ... over a sliding window (e.g., 2
seconds)".  The windows here are *tumbling at sub-window granularity*:
the window is divided into a small number of buckets that age out as
virtual time advances, which bounds memory regardless of event rate and
matches how production rate estimators (and the paper's per-window alarm
evaluation) behave.

All timestamps are seconds of simulator virtual time; nothing here reads
the wall clock.
"""

from __future__ import annotations

from typing import List


class SlidingWindowCounter:
    """Count of events within the trailing ``window`` seconds.

    Events are aggregated into ``buckets`` sub-windows; the count is exact
    at bucket granularity and conservative in between, which is what an
    alarm threshold check needs.
    """

    __slots__ = ("window", "_buckets", "_counts", "_epoch")

    def __init__(self, window: float, buckets: int = 8) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if buckets <= 0:
            raise ValueError(f"buckets must be positive, got {buckets}")
        self.window = float(window)
        self._buckets = buckets
        self._counts: List[float] = [0.0] * buckets
        self._epoch = 0  # absolute index of the newest bucket

    def _bucket_index(self, now: float) -> int:
        return int(now / (self.window / self._buckets))

    def _advance(self, now: float) -> None:
        idx = self._bucket_index(now)
        if idx <= self._epoch:
            return
        steps = idx - self._epoch
        if steps >= self._buckets:
            for i in range(self._buckets):
                self._counts[i] = 0.0
        else:
            for i in range(self._epoch + 1, idx + 1):
                self._counts[i % self._buckets] = 0.0
        self._epoch = idx

    def add(self, now: float, amount: float = 1.0) -> None:
        """Record ``amount`` events at virtual time ``now``."""
        self._advance(now)
        self._counts[self._epoch % self._buckets] += amount

    def total(self, now: float) -> float:
        """Events observed in the trailing window ending at ``now``."""
        self._advance(now)
        return sum(self._counts)

    def rate(self, now: float) -> float:
        """Average event rate (events/second) over the window."""
        return self.total(now) / self.window

    def reset(self) -> None:
        for i in range(self._buckets):
            self._counts[i] = 0.0


class SlidingWindowRatio:
    """Ratio of "hit" events to all events within the trailing window.

    Used for metrics such as the NXDOMAIN-response ratio that convicts
    pseudo-random-subdomain attackers (paper Section 5.1 uses a ratio
    threshold of 0.2).
    """

    __slots__ = ("_hits", "_all")

    def __init__(self, window: float, buckets: int = 8) -> None:
        self._hits = SlidingWindowCounter(window, buckets)
        self._all = SlidingWindowCounter(window, buckets)

    def record(self, now: float, hit: bool) -> None:
        self._all.add(now)
        if hit:
            self._hits.add(now)

    def ratio(self, now: float) -> float:
        """Hit ratio over the window; 0.0 when no events were seen."""
        denom = self._all.total(now)
        if denom <= 0:
            return 0.0
        return self._hits.total(now) / denom

    def observations(self, now: float) -> float:
        return self._all.total(now)

    def reset(self) -> None:
        self._hits.reset()
        self._all.reset()
