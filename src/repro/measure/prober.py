"""The rate-limit probing methodology (paper Appendix A).

For each resolver in the population, the prober builds a private
simulated topology (probe client -> resolver -> authoritative servers)
and estimates:

- **ingress limits** with the WC and NX patterns: dnsperf-style
  fixed-rate probing where the estimated QPS counts only NOERROR /
  NXDOMAIN responses, ramping from 100 QPS and binary-searching up to
  5000 QPS; a resolver whose throughput keeps up at the 5000 QPS bound
  is *uncertain*;
- **egress limits** with the CQ and FF amplification patterns: the
  probe rate starts at 10 QPS and rises binary-search style while the
  resolver's egress QPS is read from the authoritative server's query
  log; a plateau (egress stops increasing with the probe rate) marks the
  limit, and the probe rate is capped at min(ingress limit, 1000 QPS).

Real measurements take 30-60 s per step and pause between them; the
``scale`` knob shrinks rates and durations proportionally so the full
45-resolver sweep stays laptop-sized while every decision rule is
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.dnscore.message import Message
from repro.dnscore.rdata import RCode
from repro.netsim.link import Network
from repro.netsim.node import Node
from repro.netsim.sim import Simulator
from repro.measure.population import ResolverProfile
from repro.server.authoritative import AuthoritativeServer
from repro.server.ratelimit import RateLimitAction, RateLimitConfig, RateLimiter, TokenBucket
from repro.server.resolver import RecursiveResolver, ResolverConfig
from repro.workloads.patterns import (
    CnameChainPattern,
    FanoutPattern,
    NxdomainPattern,
    QueryPattern,
    WildcardPattern,
)
from repro.workloads.zonegen import (
    add_cq_instances,
    build_ff_attacker_zone,
    build_root_zone,
    build_target_zone,
)


@dataclass
class ProbeConfig:
    """Probing parameters (paper values at ``scale=1.0``)."""

    #: global scale applied to rates and bounds (0.1 -> 10x faster runs)
    scale: float = 1.0
    ingress_start: float = 100.0
    ingress_bound: float = 5000.0
    egress_start: float = 10.0
    egress_bound: float = 1000.0
    #: measurement duration per probe step (paper: 30 s, 15 s for egress)
    ingress_duration: float = 2.0
    egress_duration: float = 2.0
    cooldown: float = 0.5
    #: a step is saturated when achieved < ratio * offered
    saturation_ratio: float = 0.85
    #: egress plateau: step-over-step growth below this ratio
    plateau_ratio: float = 1.15
    binary_search_steps: int = 3
    #: amplification pattern parameters
    ff_fanout: int = 5
    cq_chain: int = 6
    cq_labels: int = 8
    pattern_instances: int = 64

    def rate(self, qps: float) -> float:
        return qps * self.scale


@dataclass
class IngressProbeResult:
    resolver: str
    pattern: str  # "WC" or "NX"
    #: estimated limit in *unscaled* QPS; None = uncertain
    limit: Optional[float]
    probe_steps: int

    @property
    def uncertain(self) -> bool:
        return self.limit is None


@dataclass
class EgressProbeResult:
    resolver: str
    pattern: str  # "CQ" or "FF"
    limit: Optional[float]
    probe_steps: int
    #: highest egress QPS observed (unscaled)
    peak_egress: float = 0.0

    @property
    def uncertain(self) -> bool:
        return self.limit is None


class _ProfiledResolver(RecursiveResolver):
    """A resolver whose ingress RL differentiates response types.

    BIND-style response rate limiting can configure separate limits per
    RCODE (Section 2.2.1); the population profiles use that for the
    NXDOMAIN-specific limits some real resolvers show.
    """

    def __init__(self, address: str, profile: ResolverProfile, config: ResolverConfig, scale: float) -> None:
        super().__init__(address, config)
        self._profile = profile
        self._scale = scale
        self._noerror_rl: Optional[RateLimiter] = None
        self._nx_rl: Optional[RateLimiter] = None
        # Sub-second burst depth: real RRL windows are small, and a deep
        # bucket would systematically inflate short-window estimates.
        if profile.ingress_limit is not None:
            rate = profile.ingress_limit * scale
            self._noerror_rl = RateLimiter(RateLimitConfig(rate=rate, burst=max(1.0, rate * 0.1)))
        nx_limit = profile.effective_ingress(nxdomain=True)
        if nx_limit is not None:
            rate = nx_limit * scale
            self._nx_rl = RateLimiter(RateLimitConfig(rate=rate, burst=max(1.0, rate * 0.1)))

    def _respond(self, client: str, response: Message) -> None:
        limiter = self._nx_rl if response.rcode == RCode.NXDOMAIN else self._noerror_rl
        if limiter is None:
            limiter = self._noerror_rl
        if limiter is not None and not limiter.allow(client, self.now):
            action = self._profile.action
            if action == "drop":
                return
            error = Message(
                question=response.question,
                id=response.id,
                flags=response.flags,
                rcode=RCode.SERVFAIL if action == "servfail" else RCode.REFUSED,
            )
            super()._respond(client, error)
            return
        super()._respond(client, response)


class _ProbeSource(Node):
    """Fixed-rate probe traffic with success counting (dnsperf-like)."""

    def __init__(self, address: str, resolver: str) -> None:
        super().__init__(address)
        self.resolver = resolver
        self.successes = 0
        self.sent = 0
        self._active = False
        self._pattern: Optional[QueryPattern] = None
        self._rate = 0.0

    def run_burst(self, pattern: QueryPattern, rate: float, duration: float) -> None:
        self._pattern = pattern
        self._rate = rate
        self._active = True
        self.successes = 0
        self.sent = 0
        self.sim.schedule(0.0, self._tick)
        self.sim.schedule(duration, self._stop)

    def _stop(self) -> None:
        self._active = False

    def _tick(self) -> None:
        if not self._active:
            return
        rng = self.sim.rng(f"probe.{self.address}")
        question = self._pattern.next_question(rng)
        self.send(self.resolver, Message.query(question.name, question.rrtype))
        self.sent += 1
        self.sim.schedule(1.0 / self._rate, self._tick)

    def receive(self, message: Message, src: str) -> None:
        if message.is_response and message.rcode in (RCode.NOERROR, RCode.NXDOMAIN):
            self.successes += 1


class RateLimitProber:
    """Runs the Appendix A methodology against one resolver profile."""

    TARGET_ORIGIN = "target-domain."
    ATTACKER_ORIGIN = "attacker-com."

    def __init__(self, profile: ResolverProfile, config: Optional[ProbeConfig] = None, seed: int = 7) -> None:
        self.profile = profile
        self.config = config or ProbeConfig()
        self.seed = seed
        self._build_topology()

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def _build_topology(self) -> None:
        cfg = self.config
        self.sim = Simulator(seed=self.seed)
        self.net = Network(self.sim)
        root_zone = build_root_zone(
            {
                self.TARGET_ORIGIN: ("ns1.target-domain.", "10.0.0.2"),
                self.ATTACKER_ORIGIN: ("ns1.attacker-com.", "10.0.0.3"),
            }
        )
        # Appendix A.1: measurement records use TTL 600 so that pooled
        # names are answered from cache; amplification records use TTL 1
        # so they are re-queried every time.
        target_zone = build_target_zone(
            self.TARGET_ORIGIN, "ns1", "10.0.0.2", answer_ttl=600, negative_ttl=600, ff_ttl=1
        )
        add_cq_instances(
            target_zone, cfg.pattern_instances, chain_len=cfg.cq_chain, labels=cfg.cq_labels, ttl=1
        )
        attacker_zone = build_ff_attacker_zone(
            self.ATTACKER_ORIGIN,
            self.TARGET_ORIGIN,
            "ns1",
            "10.0.0.3",
            instances=cfg.pattern_instances,
            fanout=cfg.ff_fanout,
        )
        self.root = AuthoritativeServer("10.0.0.1", zones=[root_zone])
        self.target_ans = AuthoritativeServer("10.0.0.2", zones=[target_zone])
        self.attacker_ans = AuthoritativeServer("10.0.0.3", zones=[attacker_zone])

        egress_rl = None
        if self.profile.egress_limit is not None:
            rate = self.profile.egress_limit * cfg.scale
            egress_rl = RateLimitConfig(rate=rate, burst=max(1.0, rate * 0.1))
        resolver_config = ResolverConfig(
            qname_minimization=True,
            egress_limit=egress_rl,
        )
        self.resolver = _ProfiledResolver(
            self.profile.address, self.profile, resolver_config, cfg.scale
        )
        self.resolver.add_root_hint("a.root-servers.net.", "10.0.0.1")
        self.probe = _ProbeSource("198.51.100.10", self.profile.address)
        for node in (self.root, self.target_ans, self.attacker_ans, self.resolver, self.probe):
            self.net.attach(node)

    # ------------------------------------------------------------------
    # one probe step
    # ------------------------------------------------------------------
    def _measure(self, pattern: QueryPattern, rate: float, duration: float) -> Tuple[float, float]:
        """Offer ``rate`` for ``duration``; return (achieved client QPS,
        egress QPS observed at the target authoritative server)."""
        egress_before = self.target_ans.stats.queries_received
        self.probe.run_burst(pattern, rate, duration)
        self.sim.run(until=self.sim.now + duration + 0.5)
        achieved = self.probe.successes / duration
        egress = (self.target_ans.stats.queries_received - egress_before) / duration
        # Cooldown between measurements (paper waits 60 s).
        self.sim.run(until=self.sim.now + self.config.cooldown)
        return achieved, egress

    # ------------------------------------------------------------------
    # ingress methodology
    # ------------------------------------------------------------------
    def probe_ingress(self, pattern_tag: str) -> IngressProbeResult:
        """Binary-search the ingress limit with the WC or NX pattern."""
        cfg = self.config
        pattern: QueryPattern
        if pattern_tag == "WC":
            pattern = WildcardPattern(self.TARGET_ORIGIN)
        elif pattern_tag == "NX":
            pattern = NxdomainPattern(self.TARGET_ORIGIN)
        else:
            raise ValueError(f"ingress probing uses WC or NX, not {pattern_tag}")

        steps = 0
        rate = cfg.rate(cfg.ingress_start)
        bound = cfg.rate(cfg.ingress_bound)
        last_good = 0.0
        saturated_rate: Optional[float] = None
        saturated_achieved = 0.0

        while rate <= bound:
            # Bound the name pool to the probing QPS: most requests hit
            # the resolver cache, isolating ingress RL from egress RL.
            pattern.pool_size = max(8, int(rate))
            achieved, _ = self._measure(pattern, rate, cfg.ingress_duration)
            steps += 1
            if achieved < rate * cfg.saturation_ratio:
                saturated_rate = rate
                saturated_achieved = achieved
                break
            last_good = rate
            if rate >= bound:
                break
            rate = min(rate * 2, bound)

        if saturated_rate is None:
            return IngressProbeResult(self.profile.name, pattern_tag, None, steps)

        # Refine between last_good and saturated_rate.
        lo, hi = max(last_good, 1.0), saturated_rate
        estimate = max(saturated_achieved, lo)
        for _ in range(cfg.binary_search_steps):
            mid = (lo + hi) / 2
            if mid <= lo * 1.05:
                break
            pattern.pool_size = max(8, int(mid))
            achieved, _ = self._measure(pattern, mid, cfg.ingress_duration)
            steps += 1
            if achieved < mid * cfg.saturation_ratio:
                hi = mid
                estimate = max(achieved, lo)
            else:
                lo = mid
                estimate = max(estimate, achieved)
        return IngressProbeResult(
            self.profile.name, pattern_tag, estimate / cfg.scale, steps
        )

    # ------------------------------------------------------------------
    # egress methodology
    # ------------------------------------------------------------------
    def probe_egress(self, pattern_tag: str, ingress_limit: Optional[float]) -> EgressProbeResult:
        """Ramp amplification traffic; detect the egress QPS plateau."""
        cfg = self.config
        pattern: QueryPattern
        if pattern_tag == "CQ":
            pattern = CnameChainPattern(
                self.TARGET_ORIGIN, cfg.pattern_instances, labels=cfg.cq_labels
            )
        elif pattern_tag == "FF":
            pattern = FanoutPattern(self.ATTACKER_ORIGIN, cfg.pattern_instances)
        else:
            raise ValueError(f"egress probing uses CQ or FF, not {pattern_tag}")

        bound = cfg.rate(cfg.egress_bound)
        if ingress_limit is not None:
            bound = min(bound, ingress_limit * cfg.scale)

        steps = 0
        rate = cfg.rate(cfg.egress_start)
        prev_egress = 0.0
        peak = 0.0
        plateau: Optional[float] = None
        while rate <= bound:
            _, egress = self._measure(pattern, rate, cfg.egress_duration)
            steps += 1
            peak = max(peak, egress)
            if prev_egress > 0 and egress < prev_egress * cfg.plateau_ratio:
                plateau = max(egress, prev_egress)
                break
            prev_egress = egress
            if rate >= bound:
                break
            rate = min(rate * 2, bound)

        limit = plateau / cfg.scale if plateau is not None else None
        return EgressProbeResult(
            self.profile.name, pattern_tag, limit, steps, peak_egress=peak / cfg.scale
        )
