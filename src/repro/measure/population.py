"""The measured resolver population (paper Table 3 + Figure 2 ground truth).

Table 3 lists the 45 public resolvers the paper probes.  Their actual
rate-limit configurations are unknown (that is what the measurement
estimates), so this module synthesises hidden ground-truth profiles whose
*distribution* matches Figure 2's findings:

- over a third of resolvers have an ingress limit below 100 QPS;
- around 40 of 45 are below 1500 QPS;
- a few enforce lower limits for NXDOMAIN responses (Water Torture
  countermeasure);
- some vary limits per source prefix (the paper reports the per-probe
  minimum);
- egress limits are uncertain for about half, with the certain ones
  mostly between 100 and 1500 QPS;
- over-limit actions vary: silent drop, SERVFAIL, or REFUSED.

The prober never sees these profiles; experiments compare its estimates
against them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: (name, anycast address) pairs from Table 3.
TABLE3_RESOLVERS: List[Tuple[str, str]] = [
    ("AdGuard DNS", "94.140.14.14"),
    ("AliDNS", "223.5.5.5"),
    ("AMAZON-02", "54.93.169.181"),
    ("Baidu Public DNS", "180.76.76.76"),
    ("CIRA Canadian", "149.112.121.10"),
    ("CNNIC-SDNS", "1.2.4.8"),
    ("CenturyLink", "205.171.3.65"),
    ("CleanBrowsing", "185.228.168.9"),
    ("Cloudflare", "1.1.1.1"),
    ("Cogent Comm.", "66.28.0.61"),
    ("Comodo Secure DNS", "8.26.56.26"),
    ("Control D", "76.76.2.0"),
    ("Cyberlink AG", "89.249.44.73"),
    ("DNS for Family", "94.130.180.225"),
    ("DNS.WATCH", "84.200.69.80"),
    ("DNSForge", "176.9.93.198"),
    ("DNSpai", "101.226.4.6"),
    ("Deutsche Telekom", "194.25.0.68"),
    ("Dyn", "216.146.35.35"),
    ("Fortinet", "208.91.112.53"),
    ("Freenom World", "80.80.80.80"),
    ("GCore Free", "95.85.95.85"),
    ("Google DNS", "8.8.8.8"),
    ("InfoServer GmbH", "212.89.130.180"),
    ("Level 3 DNS", "209.244.0.3"),
    ("Liteserver", "5.2.75.75"),
    ("NTT America", "129.250.35.250"),
    ("Neustar", "64.6.64.6"),
    ("NextDNS", "45.90.30.193"),
    ("Nextgi LLC", "134.195.4.2"),
    ("Norton-ConnectSafe", "199.85.126.10"),
    ("OVH SAS", "217.182.198.203"),
    ("OneDNS", "117.50.10.10"),
    ("OpenDNS Home", "208.67.222.222"),
    ("OpenNIC", "51.77.149.139"),
    ("Probe Networks", "82.96.65.2"),
    ("Quad101", "101.101.101.101"),
    ("Quad9", "9.9.9.9"),
    ("ScanPlus GmbH", "212.211.132.4"),
    ("Swisscom", "195.186.4.110"),
    ("TEFINCOM S.A.", "103.86.96.100"),
    ("TREX", "195.140.195.21"),
    ("Vodafone", "195.27.1.1"),
    ("xTom", "77.88.8.8"),
    ("114DNS", "114.114.114.114"),
]


@dataclass
class ResolverProfile:
    """Hidden ground truth for one resolver in the population."""

    name: str
    address: str
    #: ingress limit (QPS) for NOERROR traffic; None = no limit observed
    #: up to the probing bound ("uncertain" in Figure 2)
    ingress_limit: Optional[float]
    #: separate (usually lower) limit for NXDOMAIN responses; None = same
    ingress_limit_nx: Optional[float]
    #: egress limit (QPS) towards any upstream server; None = unlimited
    egress_limit: Optional[float]
    #: what the resolver does to over-limit clients
    action: str  # "drop" | "servfail" | "refused"

    def effective_ingress(self, nxdomain: bool) -> Optional[float]:
        if nxdomain and self.ingress_limit_nx is not None:
            return self.ingress_limit_nx
        return self.ingress_limit


#: Figure 2's bucket boundaries (QPS).
FIGURE2_BUCKETS: List[Tuple[float, float]] = [
    (1, 100),
    (101, 500),
    (501, 1500),
    (1501, 5000),
]


def _draw_ingress(rng: random.Random) -> Optional[float]:
    """Ingress limit distribution matching Figure 2's IRL bars."""
    roll = rng.random()
    if roll < 0.37:  # over a third below 100 QPS
        return rng.choice([20, 30, 50, 60, 80, 100])
    if roll < 0.62:
        return rng.choice([150, 200, 300, 400, 500])
    if roll < 0.87:
        return rng.choice([600, 800, 1000, 1200, 1500])
    if roll < 0.95:
        return rng.choice([2000, 3000, 4000])
    return None  # uncertain: no limit below the 5000 QPS probing bound


def _draw_egress(rng: random.Random, ingress: Optional[float]) -> Optional[float]:
    """Egress limits: ~half uncertain, the rest mostly 100-1500 QPS.

    The paper notes egress limits are often *higher* than ingress limits
    (which is why amplification patterns are needed to measure them).
    """
    if rng.random() < 0.5:
        return None
    base = rng.choice([100, 200, 400, 600, 800, 1000, 1200, 1500])
    if ingress is not None and base < ingress * 0.5:
        base = ingress  # egress rarely far below ingress
    return float(base)


def build_population(seed: int = 2024) -> List[ResolverProfile]:
    """All 45 Table 3 resolvers with synthetic hidden profiles."""
    rng = random.Random(seed)
    profiles: List[ResolverProfile] = []
    for name, address in TABLE3_RESOLVERS:
        ingress = _draw_ingress(rng)
        # A few resolvers penalise NXDOMAIN specifically (Section 2.2.1).
        nx_limit = None
        if ingress is not None and rng.random() < 0.2:
            nx_limit = max(10.0, ingress * rng.choice([0.25, 0.5]))
        profiles.append(
            ResolverProfile(
                name=name,
                address=address,
                ingress_limit=ingress,
                ingress_limit_nx=nx_limit,
                egress_limit=_draw_egress(rng, ingress),
                action=rng.choice(["drop", "drop", "servfail", "refused"]),
            )
        )
    return profiles


def bucket_of(limit: Optional[float], uncertain_bound: float = 5000.0) -> str:
    """Figure 2 bucket label for a (true or estimated) limit."""
    if limit is None or limit > uncertain_bound:
        return "Uncertain"
    for lo, hi in FIGURE2_BUCKETS:
        if lo <= limit <= hi:
            return f"{lo}-{hi}"
    return "Uncertain"
