"""The rate-limit measurement study (paper Section 2.2.1 / Appendix A).

The paper probes 45 public resolvers (Table 3) for ingress and egress
rate limits using four query patterns, producing Figure 2.  Public
resolvers are not reachable from a simulation, so:

- :mod:`repro.measure.population` builds 45 resolver models whose hidden
  RL configurations are drawn to match the measured landscape (the names
  are Table 3's; the ground-truth limits are synthetic);
- :mod:`repro.measure.prober` reimplements the probing methodology --
  dnsperf-style self-paced QPS estimation, binary search over probe
  rates, the "uncertain" criteria, and egress estimation from the
  authoritative-side query log.

Because the methodology itself is what is being reproduced, the prober
never reads a resolver's hidden configuration: it interacts with the
simulated resolver purely through DNS traffic.
"""

from repro.measure.population import ResolverProfile, build_population, TABLE3_RESOLVERS
from repro.measure.prober import ProbeConfig, IngressProbeResult, EgressProbeResult, RateLimitProber

__all__ = [
    "ResolverProfile",
    "build_population",
    "TABLE3_RESOLVERS",
    "ProbeConfig",
    "IngressProbeResult",
    "EgressProbeResult",
    "RateLimitProber",
]
