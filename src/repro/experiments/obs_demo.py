"""``repro obs``: run one observed scenario and export its telemetry.

Runs a small Figure 4 style attack scenario (FF amplification against a
DCC-enabled resolver) with the :mod:`repro.obs` subsystem switched on,
then:

- writes ``metrics.jsonl`` (counters, histograms, time series) and
  ``trace.json`` (Chrome trace-event JSON, loadable in Perfetto or
  chrome://tracing) to ``--out-dir``;
- validates the exported trace against the schema gate
  (:func:`repro.obs.export.validate_chrome_trace`);
- locates one query whose span tree crosses
  client -> resolver -> MOPI-FQ -> authoritative and prints it;
- prints the metrics/heavy-hitter digest
  (:func:`repro.analysis.report.render_obs_summary`).

Exit status is non-zero when the trace fails validation or no full
cross-layer query tree exists -- the same checks CI runs.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.analysis.provenance import provenance_header
from repro.analysis.report import render_obs_summary
from repro.experiments.common import AttackScenario, ScenarioConfig
from repro.obs import ObsConfig
from repro.obs.export import (
    chrome_trace,
    find_full_query_root,
    metrics_jsonl,
    render_span_tree,
    validate_chrome_trace,
)
from repro.workloads.schedule import ClientSpec


def build_scenario(scale: float = 0.15, seed: int = 42) -> AttackScenario:
    """The fig4-style observed run: 3 benign WC clients + 1 FF attacker
    against a DCC-enabled resolver with two redundant target servers."""
    config = ScenarioConfig(
        seed=seed,
        duration=50.0 * scale,
        channel_capacity=100.0,
        target_ans_count=2,
        use_dcc=True,
        obs=ObsConfig(sample_interval=max(0.25, scale)),
    )
    scenario = AttackScenario(config)
    scenario.add_clients(
        [
            ClientSpec("benign1", 5.0 * scale, 35.0 * scale, 3.0, "WC"),
            ClientSpec("benign2", 5.0 * scale, 35.0 * scale, 3.0, "WC"),
            ClientSpec("benign3", 5.0 * scale, 35.0 * scale, 3.0, "WC"),
            ClientSpec("attacker", 0.0, 50.0 * scale, 5.0, "FF", is_attacker=True),
        ]
    )
    return scenario


def main(
    scale: float = 0.15,
    seed: int = 42,
    out_dir: Optional[str] = "results/obs",
    top: int = 10,
) -> int:
    scenario = build_scenario(scale=scale, seed=seed)
    print(provenance_header("obs", seed=seed, scale=scale, config=scenario.config))
    scenario.run()
    obs = scenario.obs
    assert obs is not None

    trace_doc = chrome_trace(obs.tracer)
    problems = validate_chrome_trace(trace_doc)
    metrics_text = metrics_jsonl(obs.metrics)

    if out_dir is not None:
        os.makedirs(out_dir, exist_ok=True)
        metrics_path = os.path.join(out_dir, "metrics.jsonl")
        trace_path = os.path.join(out_dir, "trace.json")
        with open(metrics_path, "w", encoding="utf-8") as fh:
            fh.write(metrics_text)
        with open(trace_path, "w", encoding="utf-8") as fh:
            json.dump(trace_doc, fh, separators=(",", ":"))
        print(f"wrote {metrics_path} ({len(metrics_text.splitlines())} lines)")
        print(
            f"wrote {trace_path} ({len(trace_doc['traceEvents'])} events; "
            "open in Perfetto / chrome://tracing)"
        )

    status = 0
    if problems:
        status = 1
        print(f"\ntrace FAILED schema validation ({len(problems)} problems):")
        for problem in problems[:10]:
            print(f"  {problem}")
    else:
        print("\ntrace passed schema validation")

    root_id = find_full_query_root(obs.tracer)
    if root_id is None:
        status = 1
        print("no query span tree crosses client->resolver->mopifq->auth")
    else:
        print("\none query's full life (client -> resolver -> MOPI-FQ -> auth):\n")
        print(render_span_tree(obs.tracer, root_id))

    print(f"\n{render_obs_summary(obs, top=top)}")
    dropped = obs.tracer.dropped
    if dropped:
        print(f"\n({dropped} spans dropped beyond max_spans)")
    return status


if __name__ == "__main__":
    import sys

    sys.exit(main(scale=float(sys.argv[1]) if len(sys.argv) > 1 else 0.15))
