"""Resilience matrix: vanilla vs hardened resolver under outage + flood.

The tentpole question for the resilience layer (``server/health.py`` +
``server/overload.py``): when the *entire* authoritative backend of a
popular zone goes dark mid-NXDOMAIN-flood, how much benign service does
each resolver configuration retain?  The scenario combines the two
stressors the layer was built for:

- an **authoritative outage**: every target nameserver crashes for a
  window in the middle of the run (``netsim.faults.NodeOutage``), so
  fresh resolution of the benign names is impossible;
- an **NXDOMAIN flood**: the Table 2 NX abuser runs throughout,
  pressuring the resolver front end and the inter-server channel.

Benign clients query a bounded name pool ("WC_POOL"), the realistic
popular-names regime where caches -- and RFC 8767 serve-stale -- help.

The matrix cells:

- ``vanilla`` -- the seed resolver exactly: fixed 0.8 s timeout, EWMA
  SRTT, blind hold-down, unbounded pending table, no stale answers;
- ``hardened`` -- adaptive RTO (RFC 6298) + three-state circuit
  breakers + watermark admission control + per-request deadlines +
  serve-stale (pre-resolution fast path while breakers are open);
- ``hardened+dcc`` -- the hardened resolver with the DCC shim on top,
  so admission control sheds *suspected* clients first (the monitor
  convicts the NX abuser) instead of shedding blindly.

Reported per cell: benign availability (overall and inside the fault
window), benign goodput before/during/after the outage, attacker
goodput during the outage, recovery time, and the resilience counters
(breaker transitions, stale answers, sheds, deadline expiries).

CLI: ``python -m repro resilience [--scale S] [--seed N] [--out F]``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.report import (
    render_resilience_table,
    render_table,
    resilience_counters,
    sparkline,
)
from repro.experiments.chaos_resilience import (
    BENIGN_CLIENTS,
    benign_goodput_series,
    recovery_time,
)
from repro.experiments.common import AttackScenario, ScenarioConfig, ScenarioResult
from repro.experiments.fig8_resilience import (
    paper_monitor_config,
    paper_policy_templates,
)
from repro.netsim.faults import NodeOutage
from repro.netsim.trace import MessageTrace
from repro.server.health import HealthConfig
from repro.server.overload import OverloadConfig, ShedPolicy
from repro.server.resolver import ResolverConfig
from repro.workloads.schedule import ClientSpec

CELLS = ("vanilla", "hardened", "hardened+dcc")

#: outage window in unscaled (paper-timeline) seconds
OUTAGE_START = 25.0
OUTAGE_END = 40.0
#: the NX flood starts here; the pre-fault goodput window starts later
#: to skip the attack-onset transient
ATTACK_START = 5.0
BASELINE_FROM = 10.0


def hardened_resolver_config() -> ResolverConfig:
    """The hardened cell: every mechanism of the resilience layer on.

    Time constants are *unscaled*: they are tied to RTTs and client
    patience (2 s request timeout), which the experiment drivers never
    scale -- only the fault schedule and run length compress.
    """
    return ResolverConfig(
        serve_stale_window=30.0,
        health=HealthConfig(
            mode="adaptive",
            base_timeout=0.8,
            failure_threshold=3,
            rto_min=0.1,
            # No point arming timers past the clients' own 2 s patience.
            rto_max=2.0,
            backoff_base=0.5,
            backoff_cap=3.0,
        ),
        overload=OverloadConfig(
            # Low enough that the outage's onset transient (before the
            # breakers trip) actually engages shedding.
            high_watermark=256,
            low_watermark=128,
            shed_policy=ShedPolicy.SERVFAIL,
            serve_stale=True,
            request_deadline=1.8,
        ),
    )


def matrix_clients(time_scale: float = 1.0) -> List[ClientSpec]:
    """Table 2 rates; benign clients span the whole run and draw from a
    bounded name pool so their names are cacheable (and stale-servable)."""
    specs = [
        ClientSpec("heavy", 0.0, 60.0, 600.0, "WC_POOL"),
        ClientSpec("medium", 0.0, 60.0, 350.0, "WC_POOL"),
        ClientSpec("light", 0.0, 60.0, 150.0, "WC_POOL"),
        ClientSpec("attacker", ATTACK_START, 60.0, 1100.0, "NX", is_attacker=True),
    ]
    return [spec.scaled(time_scale) for spec in specs]


def cell_scenario_config(cell: str, scale: float, seed: int) -> ScenarioConfig:
    if cell not in CELLS:
        raise ValueError(f"unknown matrix cell {cell!r} (want one of {CELLS})")
    use_dcc = cell == "hardened+dcc"
    return ScenarioConfig(
        seed=seed,
        duration=60.0 * scale,
        channel_capacity=1000.0,
        use_dcc=use_dcc,
        monitor=paper_monitor_config(time_scale=scale),
        policy_templates=paper_policy_templates(time_scale=scale),
        target_ans_count=2,
        resolver_config=None if cell == "vanilla" else hardened_resolver_config(),
    )


def build_cell(cell: str, scale: float, seed: int) -> AttackScenario:
    """One matrix cell, built and fault-scheduled but not yet run."""
    scenario = AttackScenario(cell_scenario_config(cell, scale, seed))
    scenario.add_clients(matrix_clients(time_scale=scale))
    start = OUTAGE_START * scale
    window = (OUTAGE_END - OUTAGE_START) * scale
    # Total authoritative outage: *every* target server goes dark, so
    # during the window there is no fresh path to the benign names.
    for addr in scenario.target_ans_addrs:
        scenario.injector.add_node_outage(
            NodeOutage(address=addr, at=start, duration=window)
        )
    return scenario


@dataclass
class CellRun:
    """One matrix cell plus its derived metrics."""

    cell: str
    result: ScenarioResult
    bucket: float
    fault_start: float
    fault_end: float
    availability: float
    fault_availability: float
    baseline_goodput: float
    fault_goodput: float
    post_goodput: float
    attacker_fault_goodput: float
    recovery_time: Optional[float]
    goodput_series: List[float]
    resilience_counters: Dict[str, int]

    def metrics(self) -> Dict[str, object]:
        """The headline numbers (also what the results artifact records)."""
        out: Dict[str, object] = {
            "availability": self.availability,
            "fault_availability": self.fault_availability,
            "baseline_goodput": self.baseline_goodput,
            "fault_goodput": self.fault_goodput,
            "post_goodput": self.post_goodput,
            "attacker_fault_goodput": self.attacker_fault_goodput,
            "recovery_time": self.recovery_time,
        }
        out.update(self.resilience_counters)
        return out


def _mean_over(series: List[float], bucket: float, lo: float, hi: float) -> float:
    lo_i, hi_i = int(lo / bucket), min(int(hi / bucket), len(series))
    window = series[lo_i:hi_i]
    return sum(window) / max(1, len(window))


def _availability(result: ScenarioResult, lo: float, hi: float) -> float:
    total = successes = 0
    for name in BENIGN_CLIENTS:
        for record in result.clients[name].records:
            if lo <= record.sent_at < hi:
                total += 1
                successes += 1 if record.success else 0
    return successes / total if total else 0.0


def run_cell(cell: str, scale: float = 1.0, seed: int = 42) -> CellRun:
    scenario = build_cell(cell, scale, seed)
    result = scenario.run()
    bucket = 1.0 * scale
    fault_start, fault_end = OUTAGE_START * scale, OUTAGE_END * scale
    goodput = benign_goodput_series(result, bucket)
    baseline = _mean_over(goodput, bucket, BASELINE_FROM * scale, fault_start)
    attacker = result.clients["attacker"].effective_qps_series(
        result.duration, bucket=bucket
    )
    counters = resilience_counters(result.resolver_stats[0])
    return CellRun(
        cell=cell,
        result=result,
        bucket=bucket,
        fault_start=fault_start,
        fault_end=fault_end,
        availability=_availability(result, 0.0, result.duration),
        fault_availability=_availability(result, fault_start, fault_end),
        baseline_goodput=baseline,
        fault_goodput=_mean_over(goodput, bucket, fault_start, fault_end),
        post_goodput=_mean_over(goodput, bucket, fault_end, result.duration),
        attacker_fault_goodput=_mean_over(attacker, bucket, fault_start, fault_end),
        recovery_time=recovery_time(goodput, bucket, fault_end, baseline),
        goodput_series=goodput,
        resilience_counters=counters,
    )


def run_matrix(scale: float = 1.0, seed: int = 42) -> Dict[str, CellRun]:
    """Every cell under the identical fault schedule and client load."""
    return {cell: run_cell(cell, scale=scale, seed=seed) for cell in CELLS}


def cell_digest(cell: str, scale: float = 0.05, seed: int = 42) -> str:
    """SHA-256 over one cell's full delivered-message trace.

    The acceptance gate for the new experiment: two fresh runs with the
    same seed must hash identically (the selfcheck property extended to
    the resilience layer's code surface -- breaker jitter, stale paths,
    shedding decisions all feed the trace).
    """
    scenario = build_cell(cell, scale, seed)
    trace = MessageTrace(scenario.net, max_records=1_000_000)
    result = scenario.run()
    digest = hashlib.sha256()
    for record in trace.records:
        digest.update(
            (
                f"{record.time:.9f}|{record.src}|{record.dst}|{record.question}|"
                f"{int(record.is_response)}|{record.rcode}|{record.wire_bytes}\n"
            ).encode("utf-8")
        )
    digest.update(f"events={result.events_processed}\n".encode("utf-8"))
    digest.update(f"messages={len(trace.records)}\n".encode("utf-8"))
    return digest.hexdigest()


def render_report(runs: Dict[str, CellRun], scale: float, seed: int) -> str:
    lines: List[str] = []
    lines.append(
        "=== Resilience matrix: total authoritative outage + NX flood "
        f"(scale={scale}, seed={seed}) ==="
    )
    any_run = next(iter(runs.values()))
    lines.append(
        f"\noutage window [{any_run.fault_start:.2f}s, {any_run.fault_end:.2f}s): "
        "every target nameserver dark; NX flood runs throughout."
    )

    rows = []
    for cell, run in runs.items():
        recovered = (
            f"{run.recovery_time:.1f}s" if run.recovery_time is not None else "never"
        )
        rows.append(
            [
                cell,
                f"{run.availability:.3f}",
                f"{run.fault_availability:.3f}",
                round(run.baseline_goodput),
                round(run.fault_goodput),
                round(run.post_goodput),
                round(run.attacker_fault_goodput),
                recovered,
            ]
        )
    lines.append("\nbenign availability and goodput (summed effective QPS):")
    lines.append(
        render_table(
            [
                "cell",
                "avail(all)",
                "avail(fault)",
                "goodput pre",
                "fault",
                "post",
                "atk(fault)",
                "recovery",
            ],
            rows,
        )
    )

    lines.append("\nresilience-layer counters (first resolver):")
    lines.append(
        render_resilience_table(
            {cell: run.result.resolver_stats[0] for cell, run in runs.items()}
        )
    )

    lines.append("\nbenign goodput per second (outage is the dip):")
    for cell, run in runs.items():
        lines.append(f"  {cell:>12s} |{sparkline(run.goodput_series)}|")

    hardened, vanilla = runs["hardened"], runs["vanilla"]
    if hardened.fault_goodput > vanilla.fault_goodput:
        verdict = (
            "hardened retains benign service through the outage "
            "(stale answers + breakers + shedding)"
        )
    else:
        verdict = "WARNING: hardened did not beat vanilla during the outage"
    lines.append(
        f"\n{verdict}: {round(hardened.fault_goodput)} vs "
        f"{round(vanilla.fault_goodput)} benign QPS while every "
        "authoritative server was down."
    )
    return "\n".join(lines)


def main(scale: float = 0.25, seed: int = 42, out: Optional[str] = None) -> int:
    if scale <= 0:
        raise SystemExit(f"--scale must be positive, got {scale}")
    from repro.analysis.provenance import provenance_header

    runs = run_matrix(scale=scale, seed=seed)
    header = provenance_header("resilience", seed=seed, scale=scale)
    report = header + "\n" + render_report(runs, scale=scale, seed=seed)
    print(report)
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            fh.write(report + "\n")
        print(f"\n[written to {out}]")
    hardened, vanilla = runs["hardened"], runs["vanilla"]
    return 0 if hardened.fault_goodput > vanilla.fault_goodput else 1


if __name__ == "__main__":
    import sys

    sys.exit(main(scale=float(sys.argv[1]) if len(sys.argv) > 1 else 0.25))
