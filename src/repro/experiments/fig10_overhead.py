"""Figure 10: DCC's performance overhead under varying entity counts.

The paper drives 4 clients x 750 QPS of WC traffic while mapping query
names onto synthetic client/server ID spaces of 10K-100K entities, then
reports the DCC process's CPU load and memory alongside BIND's.

Substitutions for the Python reproduction (documented in DESIGN.md):

- **CPU** -> wall-clock throughput (operations/second) of the DCC
  control-path (pre-queue check, MOPI-FQ enqueue/dequeue, monitor
  updates) and, as the baseline, of the vanilla resolver's own
  per-request path (cache insert/lookup + pending bookkeeping).  The
  paper's observation to reproduce: DCC's cost is *insensitive* to the
  number of tracked entities (constant/logarithmic operations).
- **Memory** -> deep ``getsizeof`` over each side's state containers.
  The observations to reproduce: DCC's footprint grows with entity
  count but stays *below* the resolver's own state, and is more
  sensitive to servers than clients.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.memsize import approx_deep_size
from repro.analysis.report import render_table
from repro.dcc.monitor import AnomalyMonitor, MonitorConfig
from repro.dcc.mopifq import MopiFq, MopiFqConfig
from repro.dcc.policing import PolicyEngine
from repro.dcc.state import DccStateTables
from repro.dnscore.name import Name
from repro.dnscore.rdata import AData, RCode, RRType
from repro.dnscore.rrset import ResourceRecord, RRSet
from repro.server.cache import ResolverCache


@dataclass
class OverheadPoint:
    clients: int
    servers: int
    dcc_ops_per_sec: float
    resolver_ops_per_sec: float
    dcc_state_bytes: int
    resolver_state_bytes: int


def _drive_dcc(n_clients: int, n_servers: int, ops: int, seed: int = 11) -> OverheadPoint:
    """Run ``ops`` control-loop iterations over the given ID spaces.

    ``seed`` drives the client/server pick sequence only (a local
    ``random.Random``, never the process-global RNG -- the same
    seed-injection convention as ``experiments/common.py``).
    """
    rng = random.Random(seed)
    scheduler = MopiFq(
        MopiFqConfig(max_poq_depth=100, max_round=75, pool_capacity=100_000,
                     default_channel_rate=10_000.0)
    )
    monitor = AnomalyMonitor(MonitorConfig())
    engine = PolicyEngine()
    tables = DccStateTables()

    clients = [f"10.{i >> 16 & 255}.{i >> 8 & 255}.{i & 255}" for i in range(n_clients)]
    servers = [f"172.{i >> 16 & 255}.{i >> 8 & 255}.{i & 255}" for i in range(n_servers)]

    # Warm the tables to the target entity counts, as the paper starts
    # collecting data once the expected number of entities is tracked.
    now = 0.0
    for i, client in enumerate(clients):
        monitor.record_request(client, now)
    for i, server in enumerate(servers):
        scheduler.channel_bucket(server)

    start = time.perf_counter()
    request_id = 0
    for i in range(ops):
        now += 0.0005
        client = clients[rng.randrange(n_clients)]
        server = servers[rng.randrange(n_servers)]
        request_id += 1
        state = tables.open_request(client, request_id, now)
        engine.check(client, now)
        monitor.record_query(client, now)
        state.queries_attributed += 1
        scheduler.enqueue(client, server, i, now)
        item = scheduler.dequeue(now)
        if item is not None:
            monitor.record_answer(item.source, RCode.NOERROR, now)
        tables.close_request(client, request_id)
    elapsed = time.perf_counter() - start
    dcc_ops = ops / elapsed if elapsed > 0 else float("inf")

    dcc_bytes = (
        approx_deep_size(monitor._clients)
        + approx_deep_size(scheduler._poq)
        + approx_deep_size(scheduler._rate_lim)
        + approx_deep_size(tables._requests)
    )

    # Vanilla-resolver baseline over the same entity scale: per-server
    # state (NS info + addresses in cache) and per-client state (ingress
    # RL / policing buckets), per Table 1's left column -- plus the
    # per-request cache path as the compute cost.
    from repro.server.ratelimit import RateLimitConfig, RateLimiter

    cache = ResolverCache(max_entries=max(n_clients, n_servers) * 2)
    for i, server in enumerate(servers):
        name = Name.from_text(f"ns{i}.zone{i % 997}.example.")
        cache.put_rrset(RRSet.of(ResourceRecord(name, 3600, AData(server))), now)
    ingress = RateLimiter(RateLimitConfig(rate=1500.0))
    for client in clients:
        ingress.allow(client, now)
    qnames = [Name.from_text(f"q{i}.zone{i % 997}.example.") for i in range(2048)]
    start = time.perf_counter()
    for i in range(ops):
        name = qnames[i % len(qnames)]
        ingress.allow(clients[i % n_clients], now)
        entry = cache.get(name, RRType.A, now)
        if entry is None:
            cache.put_rrset(RRSet.of(ResourceRecord(name, 1, AData("192.0.2.1"))), now)
    elapsed = time.perf_counter() - start
    resolver_ops = ops / elapsed if elapsed > 0 else float("inf")
    resolver_bytes = approx_deep_size(cache._entries) + approx_deep_size(ingress._entries)

    return OverheadPoint(
        clients=n_clients,
        servers=n_servers,
        dcc_ops_per_sec=dcc_ops,
        resolver_ops_per_sec=resolver_ops,
        dcc_state_bytes=dcc_bytes,
        resolver_state_bytes=resolver_bytes,
    )


def run_server_sweep(
    server_counts: Optional[List[int]] = None,
    clients: int = 1000,
    ops: int = 50_000,
    seed: int = 11,
) -> List[OverheadPoint]:
    """Figure 10(a): fixed 1K clients, varying server counts."""
    counts = server_counts or [10_000, 20_000, 40_000, 60_000, 80_000, 100_000]
    return [_drive_dcc(clients, n, ops, seed=seed) for n in counts]


def run_client_sweep(
    client_counts: Optional[List[int]] = None,
    servers: int = 1000,
    ops: int = 50_000,
    seed: int = 11,
) -> List[OverheadPoint]:
    """Figure 10(b): fixed 1K servers, varying client counts."""
    counts = client_counts or [10_000, 20_000, 40_000, 60_000, 80_000, 100_000]
    return [_drive_dcc(n, servers, ops, seed=seed) for n in counts]


def main(ops: int = 50_000, quick: bool = False, seed: int = 11) -> None:
    from repro.analysis.provenance import provenance_header

    print(provenance_header(
        "fig10", seed=seed, config={"ops": ops, "quick": quick}
    ))
    counts = [10_000, 40_000, 100_000] if quick else None
    print("=== Figure 10(a): fixed 1K clients, varying servers ===")
    rows = []
    for p in run_server_sweep(counts, ops=ops, seed=seed):
        rows.append([
            f"{p.servers:,}",
            f"{p.dcc_ops_per_sec:,.0f}",
            f"{p.resolver_ops_per_sec:,.0f}",
            f"{p.dcc_state_bytes / 1e6:.1f} MB",
            f"{p.resolver_state_bytes / 1e6:.1f} MB",
        ])
    print(render_table(
        ["servers", "DCC ops/s", "resolver ops/s", "DCC state", "resolver state"], rows))

    print("\n=== Figure 10(b): fixed 1K servers, varying clients ===")
    rows = []
    for p in run_client_sweep(counts, ops=ops, seed=seed):
        rows.append([
            f"{p.clients:,}",
            f"{p.dcc_ops_per_sec:,.0f}",
            f"{p.resolver_ops_per_sec:,.0f}",
            f"{p.dcc_state_bytes / 1e6:.1f} MB",
            f"{p.resolver_state_bytes / 1e6:.1f} MB",
        ])
    print(render_table(
        ["clients", "DCC ops/s", "resolver ops/s", "DCC state", "resolver state"], rows))


if __name__ == "__main__":
    import sys

    main(quick="--quick" in sys.argv)
