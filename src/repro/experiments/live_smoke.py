"""``repro live``: the benign+NX-flood scenario over real UDP sockets.

This is the socket-backend twin of the Table 2 NX-flood setup and the
proof obligation of the transport tentpole: the *same* resolver, DCC
shim, MOPI-FQ, policing, and health modules that produce every virtual
figure are attached to :class:`repro.transport.udp.UdpFabric` and
exercised over real localhost datagrams, with the chaos proxy
interposed on the resolver<->authoritative channel (the paper's RA
channel, Section 2.3).

Topology::

    benign EngineClient ──┐                         ┌─> root auth
    attack EngineClient ──┴─> resolver (+DCC shim) ─┤
                                                    └─> [chaos proxy] ─> target auth

Determinism contract (acceptance criterion): wall-clock jitter may move
*when* things happen, but every count printed on the
``deterministic-counts:`` line is a pure function of the seed --
workloads are count-based with seeded gaps, chaos fates are keyed on
(seed, direction, qname, occurrence) rather than packet order, client
engines are configured so their RTO can never race the resolver's
answer, and the resolver's retry ladder finishes far inside the client
deadline.  Attack-side *answer* composition is timing-sensitive
(conviction windows run on real time) and deliberately excluded.

The run fails (non-zero exit) on: any in-flight-table liveness
violation (a query past deadline+grace with no verdict -- a silent
hang), any event-loop callback exception, any TCP-path error, goodput
below ``--min-goodput``, or a ``deterministic-counts`` mismatch against
``--check-against``.
"""

from __future__ import annotations

import argparse
import asyncio
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.dcc.mopifq import MopiFqConfig
from repro.dcc.shim import DccConfig, DccShim
from repro.dnscore.name import Name
from repro.server.authoritative import AuthoritativeServer
from repro.server.health import HealthConfig
from repro.server.resolver import RecursiveResolver, ResolverConfig
from repro.transport.chaosproxy import ChaosProxy, ChaosSpec
from repro.transport.engine import EngineClient, EngineConfig
from repro.transport.udp import UdpBackend
from repro.workloads.zonegen import build_root_zone, build_target_zone

TARGET_ORIGIN = "target-domain."
ROOT_ADDR = "10.0.0.1"
TARGET_ANS_ADDR = "10.0.3.1"
RESOLVER_ADDR = "10.0.1.1"
BENIGN_ADDR = "10.0.9.1"
ATTACK_ADDR = "10.0.9.66"

#: extra real time allowed after the send phase for tails to drain
#: (client deadline + liveness grace)
_DRAIN_GRACE = 1.0


@dataclass
class LiveConfig:
    seed: int = 1
    duration: float = 2.0
    benign_rate: float = 25.0
    attack_rate: float = 150.0
    loss: float = 0.0
    duplicate: float = 0.0
    delay_prob: float = 0.0
    delay_min: float = 0.005
    delay_max: float = 0.030
    #: MOPI-FQ capacity of the resolver->target channel (qps)
    channel_capacity: float = 300.0
    #: client engines give up on a query after this long
    client_deadline: float = 4.0
    min_goodput: Optional[float] = None


@dataclass
class LiveReport:
    config: LiveConfig
    counts: Dict[str, int] = field(default_factory=dict)
    info: Dict[str, Any] = field(default_factory=dict)
    liveness: List[str] = field(default_factory=list)
    loop_errors: List[str] = field(default_factory=list)
    tcp_errors: List[str] = field(default_factory=list)

    def deterministic_line(self) -> str:
        parts = [f"{key}={self.counts[key]}" for key in sorted(self.counts)]
        return "deterministic-counts: " + " ".join(parts)

    @property
    def goodput(self) -> float:
        sent = self.counts.get("benign_sent", 0)
        return self.counts.get("benign_noerror", 0) / sent if sent else 0.0

    def failures(self) -> List[str]:
        problems = list(self.liveness)
        problems.extend(f"event-loop error: {err}" for err in self.loop_errors)
        problems.extend(f"tcp error: {err}" for err in self.tcp_errors)
        floor = self.config.min_goodput
        if floor is not None and self.goodput < floor:
            problems.append(
                f"benign goodput {self.goodput:.3f} below required {floor:.3f}"
            )
        return problems


def _benign_name(i: int) -> Name:
    # unique cache-missing names under the wildcard subtree
    return Name.from_text(f"q{i:05d}.wc.{TARGET_ORIGIN}")


def _attack_name(i: int) -> Name:
    # the NX flood: unique non-existent names (paper Table 2 "NX")
    return Name.from_text(f"x{i:05d}.nx.{TARGET_ORIGIN}")


def _client_engine_config(cfg: LiveConfig) -> EngineConfig:
    # rto_min above the resolver's worst-case answer latency: client
    # verdicts then depend only on *whether* the resolver answers (a
    # seeded-fault function), never on wall-clock answer timing
    return EngineConfig(
        retries=1,
        deadline=cfg.client_deadline,
        inflight_capacity=512,
        health=HealthConfig(
            mode="adaptive", base_timeout=3.0, rto_min=3.0, rto_max=3.5,
            failure_threshold=0,
        ),
    )


def _resolver_config() -> ResolverConfig:
    # adaptive mode = the RFC 6298 estimator + Karn's rule over real RTT
    # samples; breaker off so goodput under injected loss is a pure
    # per-query retry ladder (three attempts, RTO-backed-off)
    return ResolverConfig(
        qname_minimization=False,
        max_retries=2,
        health=HealthConfig(
            mode="adaptive", base_timeout=0.3, rto_min=0.1, rto_max=2.0,
            failure_threshold=0,
        ),
    )


async def _run_async(cfg: LiveConfig) -> LiveReport:
    report = LiveReport(config=cfg)
    backend = UdpBackend(seed=cfg.seed)

    root_zone = build_root_zone({TARGET_ORIGIN: ("ns1.target-domain.", TARGET_ANS_ADDR)})
    target_zone = build_target_zone(TARGET_ORIGIN, "ns1", TARGET_ANS_ADDR)
    root = AuthoritativeServer(ROOT_ADDR, zones=[root_zone])
    target = AuthoritativeServer(
        TARGET_ANS_ADDR, zones=[target_zone], udp_payload_limit=1232
    )

    resolver = RecursiveResolver(RESOLVER_ADDR, _resolver_config())
    resolver.add_root_hint("a.root-servers.net.", ROOT_ADDR)
    shim = DccShim(
        resolver,
        DccConfig(scheduler=MopiFqConfig(default_channel_rate=cfg.channel_capacity * 10)),
    )
    shim.set_channel_capacity(
        TARGET_ANS_ADDR, cfg.channel_capacity, max(1.0, cfg.channel_capacity * 0.1)
    )

    benign = EngineClient(
        BENIGN_ADDR, RESOLVER_ADDR, _benign_name,
        rate=cfg.benign_rate, total=max(1, int(cfg.benign_rate * cfg.duration)),
        config=_client_engine_config(cfg),
    )
    attack = EngineClient(
        ATTACK_ADDR, RESOLVER_ADDR, _attack_name,
        rate=cfg.attack_rate, total=max(1, int(cfg.attack_rate * cfg.duration)),
        config=_client_engine_config(cfg),
    )

    for node in (root, target, resolver, benign, attack):
        backend.attach(node)
    await backend.start()

    spec = ChaosSpec(
        drop=cfg.loss,
        duplicate=cfg.duplicate,
        delay_prob=cfg.delay_prob,
        delay_min=cfg.delay_min,
        delay_max=cfg.delay_max,
    )
    # always interpose (a zero-probability spec is a pure relay) so the
    # lossless and chaos runs traverse identical topologies
    proxy = ChaosProxy(
        backend.fabric, backend.clock, RESOLVER_ADDR, TARGET_ANS_ADDR, spec, cfg.seed
    )
    await proxy.start()

    loop = asyncio.get_running_loop()
    loop.set_exception_handler(
        lambda _loop, ctx: report.loop_errors.append(
            str(ctx.get("exception") or ctx.get("message"))
        )
    )

    benign.start()
    attack.start()

    clock = backend.clock
    hard_stop = cfg.duration + cfg.client_deadline + _DRAIN_GRACE
    while clock.now < hard_stop:
        await asyncio.sleep(0.05)
        if benign.finished and attack.finished:
            break

    # liveness: every issued query must have reached a verdict by now
    for client in (benign, attack):
        if client.engine is not None:
            report.liveness.extend(
                f"{client.address}: {item}"
                for item in client.engine.liveness_violations(grace=_DRAIN_GRACE)
            )
        if not client.finished:
            report.liveness.append(
                f"{client.address}: {client.sent} sent but only "
                f"{sum(client.verdicts.values())} verdicts at harvest"
            )

    report.counts = {
        "benign_sent": benign.sent,
        "benign_answered": benign.verdicts.get("answered", 0),
        "benign_noerror": benign.rcodes.get("NOERROR", 0),
        "benign_servfail": benign.rcodes.get("SERVFAIL", 0),
        "benign_timeout": benign.verdicts.get("timeout", 0),
        "benign_shed": benign.verdicts.get("shed", 0),
        "attack_sent": attack.sent,
    }
    fabric_stats = backend.fabric.stats
    report.tcp_errors = list(backend.fabric.tcp_errors)
    report.info = {
        "virtual_elapsed": round(clock.now, 3),
        "attack_answered": attack.verdicts.get("answered", 0),
        "attack_timeout": attack.verdicts.get("timeout", 0),
        "datagrams_sent": fabric_stats.messages_sent,
        "datagrams_delivered": fabric_stats.messages_delivered,
        "decode_errors": fabric_stats.decode_errors,
        "tcp_queries": fabric_stats.tcp_queries,
        "chaos_received": proxy.stats.received,
        "chaos_dropped": proxy.stats.dropped,
        "chaos_duplicated": proxy.stats.duplicated,
        "chaos_delayed": proxy.stats.delayed,
        "resolver_queries_sent": resolver.stats.queries_sent,
        "resolver_retries": resolver.stats.query_retries,
        "resolver_karn_rejections": resolver.stats.karn_rejections,
        "dcc_intercepted": shim.stats.queries_intercepted,
        "dcc_policed": shim.stats.queries_policed,
        "auth_queries": target.stats.queries_received,
        "auth_nxdomain": target.stats.nxdomain_sent,
    }

    proxy.close()
    await backend.aclose()
    return report


def run_live(cfg: LiveConfig) -> LiveReport:
    return asyncio.run(_run_async(cfg))


def render_report(report: LiveReport) -> str:
    from repro.analysis.provenance import provenance_header

    cfg = report.config
    lines = [
        provenance_header(
            "live_smoke",
            seed=cfg.seed,
            config=cfg,
            extra={"backend": "udp", "loss": cfg.loss},
        ),
        "=== live smoke: benign + NX flood over real UDP sockets ===",
        "",
        report.deterministic_line(),
        "",
        f"benign goodput: {report.goodput:.3f} "
        f"({report.counts.get('benign_noerror', 0)}/{report.counts.get('benign_sent', 0)} NOERROR)",
        "",
        "run details (informational, timing-sensitive):",
    ]
    lines.extend(f"  {key} = {report.info[key]}" for key in sorted(report.info))
    problems = report.failures()
    lines.append("")
    if problems:
        lines.append("FAILURES:")
        lines.extend(f"  - {item}" for item in problems)
    else:
        lines.append("liveness: ok (no silent hangs, no loop errors)")
    return "\n".join(lines)


def _extract_counts_line(text: str) -> Optional[str]:
    for line in text.splitlines():
        if line.startswith("deterministic-counts:"):
            return line.strip()
    return None


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro live", description="benign+NX-flood smoke over real UDP sockets"
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--duration", type=float, default=2.0,
                        help="send-phase length in seconds (query counts scale with it)")
    parser.add_argument("--loss", type=float, default=0.0,
                        help="chaos-proxy drop probability on the resolver<->auth channel")
    parser.add_argument("--duplicate", type=float, default=0.0)
    parser.add_argument("--delay-prob", type=float, default=0.0)
    parser.add_argument("--min-goodput", type=float, default=None,
                        help="fail unless benign NOERROR/sent >= this fraction")
    parser.add_argument("--out", default=os.path.join("results", "live_smoke.txt"))
    parser.add_argument("--check-against", default=None, metavar="FILE",
                        help="fail unless FILE's deterministic-counts line matches this run")
    args = parser.parse_args(argv)

    cfg = LiveConfig(
        seed=args.seed,
        duration=args.duration,
        loss=args.loss,
        duplicate=args.duplicate,
        delay_prob=args.delay_prob,
        min_goodput=args.min_goodput,
    )
    report = run_live(cfg)
    rendered = render_report(report)
    print(rendered)

    status = 0
    if report.failures():
        status = 1
    if args.check_against:
        with open(args.check_against, "r", encoding="utf-8") as fh:
            expected = _extract_counts_line(fh.read())
        actual = report.deterministic_line()
        if expected != actual:
            print("\ndeterminism check FAILED against "
                  f"{args.check_against}:\n  expected: {expected}\n  actual:   {actual}")
            status = 1
        else:
            print(f"\ndeterminism check ok against {args.check_against}")
    if args.out:
        out_dir = os.path.dirname(args.out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(rendered + "\n")
        print(f"[written to {args.out}]")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
