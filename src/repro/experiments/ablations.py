"""Ablation drivers: the design choices DESIGN.md calls out, printable.

Three studies, each isolating one design decision of the DCC framework:

- **schedulers** — the Figure 7 design space under a hog/meek mix and
  under cross-channel congestion (fairness + HOL blocking);
- **depth** — MOPI-FQ queue depth vs max-min-fairness deviation
  (Theorem B.1's capacity assumption);
- **mitigations** — the NX-flood mitigation matrix: vanilla vs RFC 8198
  aggressive denial vs DCC.

`python -m repro ablations` prints all three.
"""

from __future__ import annotations

import heapq
import random
from typing import Callable, Dict, List, Optional

from repro.analysis.fairness import jain_index, mmf_deviation
from repro.analysis.report import render_table
from repro.dcc.baselines import (
    FifoScheduler,
    InputCentricFq,
    IoIsolatedFq,
    LeapfrogInputFq,
    OutputCentricFq,
)
from repro.dcc.mopifq import MopiFq, MopiFqConfig

SCHEDULER_FACTORIES: Dict[str, Callable[[], object]] = {
    "fifo": lambda: FifoScheduler(default_rate=100.0),
    "input-centric": lambda: InputCentricFq(default_rate=100.0),
    "leapfrog": lambda: LeapfrogInputFq(default_rate=100.0),
    "io-isolated": lambda: IoIsolatedFq(default_rate=100.0),
    "output-centric": lambda: OutputCentricFq(default_rate=100.0),
    "MOPI-FQ": lambda: MopiFq(MopiFqConfig(default_channel_rate=100.0)),
}


# ----------------------------------------------------------------------
# scheduler design space
# ----------------------------------------------------------------------

def fairness_study(T: float = 10.0, seed: int = 1) -> List[List[object]]:
    """Hog (500 QPS) vs three meek (20 QPS) sources on a 100-QPS channel."""
    rows = []
    for name, factory in SCHEDULER_FACTORIES.items():
        rng = random.Random(seed)
        sched = factory()
        sched.set_channel_capacity("d", 100.0, 10.0)
        arrivals = {"hog": 0.0, "m0": 0.0, "m1": 0.0, "m2": 0.0}
        rates = {"hog": 500.0, "m0": 20.0, "m1": 20.0, "m2": 20.0}
        counts: Dict[str, int] = {}
        t = 0.0
        while t < T:
            source = min(arrivals, key=arrivals.get)
            t = arrivals[source]
            sched.enqueue(source, "d", None, t)
            arrivals[source] = t + (1.0 / rates[source]) * rng.uniform(0.9, 1.1)
            while True:
                item = sched.dequeue(t)
                if item is None:
                    break
                if t > 2.0:
                    counts[item.source] = counts.get(item.source, 0) + 1
        horizon = T - 2.0
        meek_rate = sum(counts.get(f"m{i}", 0) for i in range(3)) / 3 / horizon
        hog_rate = counts.get("hog", 0) / horizon
        rows.append([
            name,
            f"{meek_rate:.1f}",
            f"{hog_rate:.1f}",
            f"{jain_index([meek_rate] * 3 + [hog_rate]):.2f}",
        ])
    return rows


def hol_study(T: float = 5.0) -> List[List[object]]:
    """Delivery to a healthy channel while another is congested."""
    rows = []
    for name, factory in SCHEDULER_FACTORIES.items():
        sched = factory()
        sched.set_channel_capacity("dead", 0.001, 1.0)
        sched.set_channel_capacity("ok", 1000.0, 100.0)
        sched.channel_bucket("dead").try_consume(0.0)
        healthy = 0
        offered = 0
        t = 0.0
        i = 0
        while t < T:
            t += 0.01
            i += 1
            to_ok = bool(i % 2 == 0)
            if to_ok:
                offered += 1
            sched.enqueue("s", "ok" if to_ok else "dead", None, t)
            while True:
                item = sched.dequeue(t)
                if item is None:
                    break
                if item.destination == "ok":
                    healthy += 1
        rows.append([name, f"{healthy}/{offered}", f"{healthy / max(1, offered):.0%}"])
    return rows


# ----------------------------------------------------------------------
# depth vs fairness
# ----------------------------------------------------------------------

def depth_study(
    depths: Optional[List[int]] = None, T: float = 15.0, seed: int = 7
) -> List[List[object]]:
    """MMF deviation of the Table 2 demand vector vs queue depth."""
    rates = {"heavy": 600.0, "medium": 350.0, "light": 150.0, "attacker": 1100.0}
    capacity = 1000.0
    rows = []
    for depth in depths or [25, 50, 100, 200, 300]:
        rng = random.Random(seed)
        fq = MopiFq(MopiFqConfig(max_poq_depth=depth, max_round=75, pool_capacity=100_000))
        fq.set_channel_capacity("dst", capacity)
        events = []
        names = list(rates)
        for i, name in enumerate(names):
            heapq.heappush(events, (1.0 / rates[name], i, 0))
        counts = {name: 0 for name in names}
        seq = 1
        while events:
            t, i, _ = heapq.heappop(events)
            if t > T:
                break
            while True:
                item = fq.dequeue(t)
                if item is None:
                    break
                if t >= 5.0:
                    counts[item.source] += 1
            name = names[i]
            fq.enqueue(name, "dst", None, t)
            heapq.heappush(events, (t + (1.0 / rates[name]) * (1 + rng.uniform(-0.1, 0.1)), i, seq))
            seq += 1
        measured = {name: counts[name] / (T - 5.0) for name in names}
        deviation = mmf_deviation(measured, rates, capacity)
        rows.append([
            depth,
            f"{measured['heavy']:.0f}/{measured['medium']:.0f}/"
            f"{measured['light']:.0f}/{measured['attacker']:.0f}",
            f"{deviation:.3f}",
            "(meets Thm B.1 assumption)" if depth >= 300 else "",
        ])
    return rows


def main(seed: int = 1) -> None:
    """``seed`` feeds the studies' local jitter RNGs (the depth study
    keeps its historical default of ``seed + 6`` so published numbers
    stay reproducible); the process-global RNG is never touched."""
    from repro.analysis.provenance import provenance_header

    print(provenance_header("ablations", seed=seed))
    print("=== Ablation 1: scheduler design space (Figure 7) ===\n")
    print("-- fairness: hog 500 QPS vs 3x meek 20 QPS on a 100-QPS channel --")
    print(render_table(
        ["scheduler", "meek QPS (each)", "hog QPS", "Jain"], fairness_study(seed=seed)
    ))
    print("\n-- head-of-line blocking: healthy-channel delivery while another "
          "channel is dead --")
    print(render_table(["scheduler", "delivered", "ratio"], hol_study()))

    print("\n=== Ablation 2: MOPI-FQ queue depth vs max-min fairness ===\n")
    print(render_table(
        ["depth", "heavy/medium/light/attacker QPS", "MMF deviation", ""],
        depth_study(seed=seed + 6),
    ))
    print("\n(ideal water-filling: 283/283/150/283; deviation -> 0 once the "
          "queue accommodates all senders)")


if __name__ == "__main__":
    main()
