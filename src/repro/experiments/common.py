"""Shared scenario machinery for the attack/defense experiments.

Builds the Figure 3 topologies in a simulator:

- a root authoritative server delegating the experiment domains;
- one or more **target** authoritative servers (the congested RA
  channel's upstream end) with optional ingress RL;
- an **attacker** authoritative server hosting the FF zone;
- one or more recursive resolvers (optionally DCC-enabled);
- an optional forwarder in front (setups c/d), itself optionally
  DCC-enabled;
- the Table 2 client population.

Metrics: per-client effective QPS (successful responses per second,
the Figure 8 metric), per-client on-the-wire query series measured at
the resolver egress tap (the Figure 8c FF metric), and windowed success
ratios (the Figure 4 metric).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

from repro.dcc.monitor import MonitorConfig
from repro.dcc.mopifq import MopiFqConfig
from repro.dcc.shim import DccConfig, DccShim
from repro.dnscore.edns import ClientAttribution, OptionCode
from repro.dnscore.message import Message, Question
from repro.netsim.faults import FaultInjector
from repro.netsim.link import Network
from repro.netsim.sim import Simulator
from repro.obs import ObsConfig, Observability
from repro.analysis.series import TimeSeries
from repro.server.authoritative import AuthoritativeServer
from repro.server.forwarder import Forwarder, ForwarderConfig
from repro.server.ratelimit import RateLimitAction, RateLimitConfig
from repro.server.resolver import RecursiveResolver, ResolverConfig
from repro.workloads.clients import ClientConfig, StubClient
from repro.workloads.patterns import (
    FanoutPattern,
    NxdomainPattern,
    QueryPattern,
    WildcardPattern,
)
from repro.workloads.schedule import ClientSpec
from repro.workloads.zonegen import (
    build_ff_attacker_zone,
    build_root_zone,
    build_target_zone,
)

TARGET_ORIGIN = "target-domain."
ATTACKER_ORIGIN = "attacker-com."
ROOT_ADDR = "10.0.0.1"
ATTACKER_ANS_ADDR = "10.0.0.3"


class SwitchingPattern(QueryPattern):
    """Switches from one pattern to another at a fixed virtual time.

    Used for the Figure 8(b) heavy client, which abuses the NX pattern
    for its first 20 seconds and then behaves (WC).
    """

    tag = "SW"

    def __init__(self, before: QueryPattern, after: QueryPattern, switch_at: float, clock: Callable[[], float]) -> None:
        self.before = before
        self.after = after
        self.switch_at = switch_at
        self._clock = clock

    def next_question(self, rng: random.Random) -> Question:
        pattern = self.after if self._clock() >= self.switch_at else self.before
        return pattern.next_question(rng)


@dataclass
class ScenarioConfig:
    """Knobs for one attack/defense scenario run."""

    seed: int = 42
    duration: float = 60.0
    #: capacity (QPS) of each resolver->target-ANS channel
    channel_capacity: float = 1000.0
    #: capacity of the forwarder->resolver channel, if a forwarder exists
    rr_channel_capacity: Optional[float] = None
    use_dcc: bool = False
    dcc_signaling: bool = True
    #: DCC on the forwarder too (Figure 9 uses DCC at both hops)
    dcc_on_forwarder: bool = False
    max_poq_depth: int = 100
    max_round: int = 75
    pool_capacity: int = 100_000
    monitor: MonitorConfig = field(default_factory=MonitorConfig)
    #: anomaly-kind -> PolicyTemplate overrides (None = paper defaults)
    policy_templates: Optional[Dict] = None
    countdown_threshold: int = 5
    target_ans_count: int = 1
    resolver_count: int = 1
    with_forwarder: bool = False
    #: round-robin client requests across upstream resolvers (large
    #: resolver systems distribute requests over their egress set);
    #: False = primary-with-failover, typical of small forwarders
    forwarder_rotate: bool = False
    #: which clients sit behind the forwarder (names); others talk to
    #: the recursive resolver(s) directly
    forwarded_clients: Optional[List[str]] = None
    ff_fanout: int = 7
    ff_instances: int = 200
    #: resolver-side knobs
    qname_minimization: bool = False
    client_timeout: float = 2.0
    client_attempts: int = 1
    dcc_aware_clients: bool = False
    #: how the vanilla channel cap is enforced at the target ANS
    rl_action: RateLimitAction = RateLimitAction.DROP
    #: swap MOPI-FQ for a Figure 7 baseline scheduler (ablations); the
    #: factory is called once per DCC instance
    scheduler_factory: Optional[Callable[[], object]] = None
    #: per-client MOPI-FQ shares (Section 3.2.1); maps *addresses*
    share_of: Optional[Callable[[str], int]] = None
    #: wildcard answer TTLs (1 s: cache-bypassing, as in the attacks)
    answer_ttl: int = 1
    #: full resolver configuration override (hardened-resolver cells of
    #: the resilience matrix); None keeps the vanilla defaults with only
    #: ``qname_minimization`` applied
    resolver_config: Optional[ResolverConfig] = None
    #: name-pool size for the "WC_POOL" client pattern (names repeat, so
    #: the traffic is cache-hittable -- and serve-stale-able)
    wc_pool_size: int = 512
    #: opt into the repro.obs observability subsystem (None = off, the
    #: zero-overhead default; see docs/OBSERVABILITY.md)
    obs: Optional[ObsConfig] = None

    # -- round-trip serialization (fuzz counterexamples, saved sweeps) --
    def to_dict(self) -> Dict:
        """JSON-safe form; raises on callable fields (``share_of``,
        ``scheduler_factory``, ``policy_templates``), which cannot ride
        in a checked-in counterexample."""
        from repro.fuzz.serialize import encode_dataclass, require_serializable

        require_serializable(
            self,
            {
                "scheduler_factory": self.scheduler_factory,
                "share_of": self.share_of,
                "policy_templates": self.policy_templates,
            },
        )
        return encode_dataclass(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "ScenarioConfig":
        """Rebuild a config (enums, nested resolver/monitor/health/
        overload dataclasses included) bit-for-bit from :meth:`to_dict`."""
        from repro.fuzz.serialize import decode_dataclass

        return decode_dataclass(cls, data)


@dataclass
class ScenarioResult:
    clients: Dict[str, StubClient]
    #: per-client successful responses per second (Figure 8 metric)
    effective_qps: Dict[str, List[float]]
    #: per-client queries on the resolver->ANS wire per second
    wire_qps: Dict[str, List[float]]
    duration: float
    resolver_stats: List[object]
    ans_queries: int
    events_processed: int

    def success_ratio(self, client: str, since: float, until: float) -> float:
        return self.clients[client].success_ratio(since, until)


class AttackScenario:
    """Builds and runs one Figure 3/Table 2 style scenario."""

    def __init__(self, config: ScenarioConfig) -> None:
        self.config = config
        self.sim = Simulator(seed=config.seed)
        self.net = Network(self.sim)
        #: fault-injection surface: chaos experiments schedule outages,
        #: partitions, and degradation ramps here before run()
        self.injector = FaultInjector(self.net)
        self.clients: Dict[str, StubClient] = {}
        self.shims: List[DccShim] = []
        self._client_addr: Dict[str, str] = {}
        self._wire_series: Dict[str, TimeSeries] = {}
        #: live observability facade, or None when the run is not observed
        self.obs: Optional[Observability] = (
            Observability(config.obs) if config.obs is not None else None
        )
        self._build()
        self._wire_obs()

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def _build(self) -> None:
        cfg = self.config

        self.target_ans_addrs = [f"10.0.0.{2 + 10 * i}" for i in range(cfg.target_ans_count)]
        delegations = {ATTACKER_ORIGIN: ("ns1.attacker-com.", ATTACKER_ANS_ADDR)}
        root_zone = build_root_zone({TARGET_ORIGIN: ("ns1.target-domain.", self.target_ans_addrs[0])})
        # Redundant target servers: one NS record + glue per server.
        for i, addr in enumerate(self.target_ans_addrs[1:], start=2):
            root_zone.add_ns(TARGET_ORIGIN, f"ns{i}.target-domain.")
            root_zone.add_a(f"ns{i}.target-domain.", addr)
        root_zone.add_ns(ATTACKER_ORIGIN, "ns1.attacker-com.")
        root_zone.add_a("ns1.attacker-com.", ATTACKER_ANS_ADDR)
        self.root = AuthoritativeServer(ROOT_ADDR, zones=[root_zone])
        self.net.attach(self.root)

        # Target zone (shared content across redundant servers).
        self.target_ans: List[AuthoritativeServer] = []
        for i, addr in enumerate(self.target_ans_addrs):
            zone = build_target_zone(
                TARGET_ORIGIN,
                f"ns{i + 1}" if i else "ns1",
                addr,
                answer_ttl=cfg.answer_ttl,
                negative_ttl=cfg.answer_ttl,
                ff_ttl=cfg.answer_ttl,
            )
            # The vanilla channel cap: ingress RL at the target server.
            # DCC-enabled runs keep it too (DCC stays below it, so it
            # never fires -- exactly the deployment story).
            ans = AuthoritativeServer(
                addr,
                zones=[zone],
                # BIND-RRL-style fixed-window response limiting: first
                # `capacity` responses per second pass, the rest drop.
                ingress_limit=RateLimitConfig(
                    rate=cfg.channel_capacity,
                    action=cfg.rl_action,
                    mode="window",
                ),
            )
            self.target_ans.append(ans)
            self.net.attach(ans)

        attacker_zone = build_ff_attacker_zone(
            ATTACKER_ORIGIN,
            TARGET_ORIGIN,
            "ns1",
            ATTACKER_ANS_ADDR,
            instances=cfg.ff_instances,
            fanout=cfg.ff_fanout,
        )
        self.attacker_ans = AuthoritativeServer(ATTACKER_ANS_ADDR, zones=[attacker_zone])
        self.net.attach(self.attacker_ans)

        # Recursive resolvers.
        self.resolvers: List[RecursiveResolver] = []
        for i in range(cfg.resolver_count):
            if cfg.resolver_config is not None:
                # Fresh copy per resolver: the rr-channel branch below
                # mutates resolver.config in place.
                resolver_cfg = replace(cfg.resolver_config)
            else:
                resolver_cfg = ResolverConfig(qname_minimization=cfg.qname_minimization)
            resolver = RecursiveResolver(f"10.0.1.{i + 1}", resolver_cfg)
            resolver.add_root_hint("a.root-servers.net.", ROOT_ADDR)
            resolver.egress_tap = self._make_tap()
            self.net.attach(resolver)
            if cfg.use_dcc:
                shim = DccShim(
                    resolver,
                    DccConfig(
                        scheduler=MopiFqConfig(
                            max_poq_depth=cfg.max_poq_depth,
                            max_round=cfg.max_round,
                            pool_capacity=cfg.pool_capacity,
                            default_channel_rate=cfg.channel_capacity * 10,
                        ),
                        monitor=cfg.monitor,
                        policy_templates=cfg.policy_templates,
                        signaling=cfg.dcc_signaling,
                        countdown_threshold=cfg.countdown_threshold,
                        scheduler_factory=cfg.scheduler_factory,
                        share_of=cfg.share_of,
                    ),
                )
                for addr in self.target_ans_addrs:
                    shim.set_channel_capacity(
                        addr, cfg.channel_capacity, max(1.0, cfg.channel_capacity * 0.1)
                    )
                self.shims.append(shim)
            self.resolvers.append(resolver)

        # Optional forwarder in front of the resolvers.
        self.forwarder: Optional[Forwarder] = None
        if cfg.with_forwarder:
            self.forwarder = Forwarder(
                "10.0.2.1",
                ForwarderConfig(
                    upstreams=[r.address for r in self.resolvers],
                    query_timeout=cfg.client_timeout,
                    rotate=cfg.forwarder_rotate,
                ),
            )
            self.forwarder.egress_tap = self._make_tap()
            self.net.attach(self.forwarder)
            if cfg.use_dcc and cfg.dcc_on_forwarder:
                shim = DccShim(
                    self.forwarder,
                    DccConfig(
                        scheduler=MopiFqConfig(
                            max_poq_depth=cfg.max_poq_depth,
                            max_round=cfg.max_round,
                            pool_capacity=cfg.pool_capacity,
                            default_channel_rate=(cfg.rr_channel_capacity or cfg.channel_capacity) * 10,
                        ),
                        monitor=cfg.monitor,
                        policy_templates=cfg.policy_templates,
                        signaling=cfg.dcc_signaling,
                        countdown_threshold=cfg.countdown_threshold,
                        scheduler_factory=cfg.scheduler_factory,
                    ),
                )
                if cfg.rr_channel_capacity is not None:
                    for resolver in self.resolvers:
                        shim.set_channel_capacity(
                            resolver.address,
                            cfg.rr_channel_capacity,
                            max(1.0, cfg.rr_channel_capacity * 0.1),
                        )
                self.shims.append(shim)
            if cfg.rr_channel_capacity is not None and not cfg.use_dcc:
                # Vanilla RR channel cap: ingress RL at the resolvers.
                for resolver in self.resolvers:
                    resolver.ingress_rl = None  # replaced below
                    resolver.config.ingress_limit = RateLimitConfig(
                        rate=cfg.rr_channel_capacity,
                        action=cfg.rl_action,
                        mode="window",
                    )
                    from repro.server.ratelimit import RateLimiter

                    resolver.ingress_rl = RateLimiter(resolver.config.ingress_limit)

    def _wire_obs(self) -> None:
        """Hand the live facade to every instrumented component.

        A single Observability instance observes the whole scenario; the
        track names encode which entity each span/instant belongs to.
        """
        obs = self.obs
        if obs is None:
            return
        obs.attach(self.sim)
        nodes = [self.root, self.attacker_ans, *self.target_ans, *self.resolvers]
        if self.forwarder is not None:
            nodes.append(self.forwarder)
        for node in nodes:
            node.obs = obs
        for resolver in self.resolvers:
            resolver.health.obs = obs
            resolver.health.obs_track = f"resolver:{resolver.address}"
            if resolver.overload is not None:
                resolver.overload.obs = obs
        if self.forwarder is not None:
            self.forwarder.health.obs = obs
            self.forwarder.health.obs_track = f"forwarder:{self.forwarder.address}"
        for shim in self.shims:
            shim.obs = obs
            shim.monitor.obs = obs
            shim.monitor.obs_track = shim._obs_track
            shim.engine.obs = obs
            shim.engine.obs_track = shim._obs_track
            shim.scheduler.obs = obs

    def _make_tap(self):
        """Per-second wire accounting keyed by attributed client."""
        duration = self.config.duration

        def tap(query: Message, server: str) -> None:
            if server not in self.target_ans_addrs:
                return
            option = query.find_edns(OptionCode.CLIENT_ATTRIBUTION)
            if option is None:
                return
            client_addr = ClientAttribution.decode(option).client
            name = self._addr_to_name(client_addr)
            if name is None:
                return
            series = self._wire_series.get(name)
            if series is None:
                series = TimeSeries(duration)
                self._wire_series[name] = series
            series.add(self.sim.now)

        return tap

    def _addr_to_name(self, address: str) -> Optional[str]:
        for name, addr in self._client_addr.items():
            if addr == address:
                return name
        # Queries attributed to the forwarder belong to whichever of its
        # clients originated them; at the resolver hop we cannot tell
        # (the paper's visibility problem), so they are accounted to the
        # forwarder pseudo-client.
        if self.forwarder is not None and address == self.forwarder.address:
            return "__forwarder__"
        return None

    # ------------------------------------------------------------------
    # clients
    # ------------------------------------------------------------------
    def add_clients(self, specs: List[ClientSpec]) -> None:
        cfg = self.config
        for i, spec in enumerate(specs):
            behind_forwarder = cfg.with_forwarder and (
                cfg.forwarded_clients is None or spec.name in cfg.forwarded_clients
            )
            if behind_forwarder:
                resolvers = [self.forwarder.address]
            else:
                resolvers = [r.address for r in self.resolvers]
            address = f"10.1.{'9' if spec.is_attacker else '0'}.{i + 1}"
            client = StubClient(
                address,
                self._pattern_for(spec),
                ClientConfig(
                    rate=spec.rate,
                    start=spec.start,
                    stop=min(spec.stop, cfg.duration),
                    resolvers=resolvers,
                    request_timeout=cfg.client_timeout,
                    max_attempts=cfg.client_attempts,
                    dcc_aware=cfg.dcc_aware_clients and not spec.is_attacker,
                ),
            )
            self.net.attach(client)
            self.clients[spec.name] = client
            self._client_addr[spec.name] = address

    def _pattern_for(self, spec: ClientSpec) -> QueryPattern:
        if spec.pattern == "WC":
            return WildcardPattern(TARGET_ORIGIN)
        if spec.pattern == "WC_POOL":
            return WildcardPattern(TARGET_ORIGIN, pool_size=self.config.wc_pool_size)
        if spec.pattern == "NX":
            return NxdomainPattern(TARGET_ORIGIN)
        if spec.pattern == "FF":
            return FanoutPattern(ATTACKER_ORIGIN, self.config.ff_instances)
        if spec.pattern == "NX_THEN_WC":
            switch_at = spec.start + (20.0 / 60.0) * (spec.stop - spec.start)
            return SwitchingPattern(
                NxdomainPattern(TARGET_ORIGIN),
                WildcardPattern(TARGET_ORIGIN),
                switch_at=switch_at,
                clock=lambda: self.sim.now,
            )
        raise ValueError(f"unknown pattern {spec.pattern!r}")

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, grace: float = 3.0) -> ScenarioResult:
        for client in self.clients.values():
            client.start()
        self.sim.run(until=self.config.duration + grace)
        if self.obs is not None:
            self.obs.finish(self.sim.now)
        effective = {
            name: client.effective_qps_series(self.config.duration)
            for name, client in self.clients.items()
        }
        wire = {name: series.rates() for name, series in self._wire_series.items()}
        return ScenarioResult(
            clients=self.clients,
            effective_qps=effective,
            wire_qps=wire,
            duration=self.config.duration,
            resolver_stats=[r.stats for r in self.resolvers],
            ans_queries=sum(a.stats.queries_received for a in self.target_ans),
            events_processed=self.sim.events_processed,
        )
