"""``repro chaos``: one fault schedule, either backend, recovery SLOs.

The chaos tentpole's proof obligation: a *serialized* fault schedule
(:mod:`repro.netsim.faults` dicts) replays against the virtual backend
and the real-socket backend through the same orchestration API
(:mod:`repro.chaos.orchestrator`), and a recovery-SLO audit
(:mod:`repro.chaos.slo`) emits deterministic MTTR / goodput-retained /
time-to-90% metrics either way.

Topology (live_smoke's, plus a second benign client)::

    pool EngineClient  ──┐                          ┌─> root auth
    fresh EngineClient ──┼─> resolver (+DCC shim) ──┤      [partition]
    NX attacker        ──┘                          └─> target auth
                                                           [outage + delay ramp]

Two benign workloads separate the hardening layers' contributions: the
**pool** client re-asks a small set of wildcard names (TTL 1 s -- during
an outage these hit RFC 8767 serve-stale and keep answering NOERROR),
while the **fresh** client asks unique names (no cache to fall back on:
during a total authoritative outage these SERVFAIL, and their recovery
is what MTTR measures).  The NX attacker supplies adversarial load so
DCC is exercised, but only its (count-based) ``sent`` total enters the
metrics document.

Determinism contract: the metrics JSON written by ``--metrics-out`` is
*byte-identical* across same-seed runs on the same backend -- samples
are classified by seeded nominal send time, boundary-ambiguous samples
fall in guard bands, and the document is serialized through
:func:`repro.obs.export.canonical_json`.  ``--check-against`` compares
a previous run's file against the current bytes; ``--slo`` gates on the
recovery floors (the acceptance criterion: the live run recovers to
>= 80% of pre-fault goodput after a total authoritative outage with DCC
and hardening enabled).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.chaos import (
    LiveChaosOrchestrator,
    RecoveryAuditor,
    SimChaosOrchestrator,
    SloConfig,
)
from repro.dcc.mopifq import MopiFqConfig
from repro.dcc.shim import DccConfig, DccShim
from repro.dnscore.name import Name
from repro.netsim.faults import (
    FaultSpec,
    LinkDegradation,
    NodeOutage,
    Partition,
    fault_span,
    schedule_from_dicts,
    schedule_to_dicts,
)
from repro.obs import Observability
from repro.obs.export import canonical_json, metrics_jsonl
from repro.server.authoritative import AuthoritativeServer
from repro.server.health import HealthConfig
from repro.server.resolver import RecursiveResolver, ResolverConfig
from repro.transport.engine import EngineClient, EngineConfig
from repro.transport.simnet import VirtualBackend
from repro.transport.udp import UdpBackend
from repro.workloads.zonegen import build_root_zone, build_target_zone

TARGET_ORIGIN = "target-domain."
ROOT_ADDR = "10.0.0.1"
TARGET_ANS_ADDR = "10.0.3.1"
RESOLVER_ADDR = "10.0.1.1"
POOL_ADDR = "10.0.9.1"
FRESH_ADDR = "10.0.9.2"
ATTACK_ADDR = "10.0.9.66"

#: names the pool client cycles through (each stays cached + goes stale)
POOL_SIZE = 8

#: extra real/virtual time after the send phase for verdict tails
_DRAIN_GRACE = 1.0
#: seeded inter-arrival jitter can push the last nominal send past
#: ``duration`` by a small random walk; the harvest horizon covers it
_NOMINAL_SLACK = 1.5


def default_schedule() -> List[FaultSpec]:
    """All three fault kinds over one [3 s, 6 s) envelope.

    The outage is the total authoritative failure the acceptance
    criterion names; the partition cuts resolver<->root (invisible to
    verdicts while the referral is cached -- it exercises the severing
    machinery); the delay-only degradation ramps added latency onto the
    resolver<->target channel without ever flipping a verdict.
    """
    return [
        NodeOutage(address=TARGET_ANS_ADDR, at=3.0, duration=3.0),
        Partition(a=ROOT_ADDR, b=RESOLVER_ADDR, start=3.0, end=6.0),
        LinkDegradation(
            src=RESOLVER_ADDR, dst=TARGET_ANS_ADDR,
            start=3.0, end=6.0, latency=0.010, ramp=1.0,
        ),
    ]


@dataclass
class ChaosConfig:
    backend: str = "sim"
    seed: int = 1
    duration: float = 10.0
    pool_rate: float = 15.0
    fresh_rate: float = 15.0
    attack_rate: float = 40.0
    channel_capacity: float = 300.0
    client_deadline: float = 4.0
    slo: SloConfig = field(default_factory=SloConfig)
    #: gate the exit status on the SLO floors (otherwise report-only)
    enforce_slo: bool = False


@dataclass
class ChaosReport:
    """One run: the audit plus everything around it."""

    config: ChaosConfig
    auditor: RecoveryAuditor
    #: seed-pure keys merged into the canonical metrics document
    extra: Dict[str, Any] = field(default_factory=dict)
    #: timing-sensitive observations (report-only, never in the gate)
    info: Dict[str, Any] = field(default_factory=dict)
    timeline: List[str] = field(default_factory=list)
    liveness: List[str] = field(default_factory=list)
    loop_errors: List[str] = field(default_factory=list)

    def canonical_metrics(self) -> str:
        return self.auditor.canonical(self.extra)

    def failures(self) -> List[str]:
        problems = list(self.liveness)
        problems.extend(f"event-loop error: {err}" for err in self.loop_errors)
        if self.config.enforce_slo:
            problems.extend(self.auditor.failures())
        return problems


def _pool_name(i: int) -> Name:
    return Name.from_text(f"p{i % POOL_SIZE}.wc.{TARGET_ORIGIN}")


def _fresh_name(i: int) -> Name:
    return Name.from_text(f"f{i:05d}.wc.{TARGET_ORIGIN}")


def _attack_name(i: int) -> Name:
    return Name.from_text(f"x{i:05d}.nx.{TARGET_ORIGIN}")


def _client_engine_config(cfg: ChaosConfig) -> EngineConfig:
    # same reasoning as live_smoke: rto_min above the resolver's
    # worst-case answer latency, so a client verdict depends only on
    # *whether* the resolver answers, never on wall answer timing
    return EngineConfig(
        retries=1,
        deadline=cfg.client_deadline,
        inflight_capacity=512,
        health=HealthConfig(
            mode="adaptive", base_timeout=3.0, rto_min=3.0, rto_max=3.5,
            failure_threshold=0,
        ),
    )


def _resolver_config() -> ResolverConfig:
    # the hardened resolver: adaptive RTO + circuit breaker + RFC 8767
    # serve-stale.  rto_max bounds the three-attempt retry ladder at
    # 0.3 + 0.5 + 0.5 = 1.3 s -- inside the SLO ladder_guard (1.5 s), so
    # a ladder started before the heal boundary's guard band cannot
    # resolve after it; backoff_cap keeps the breaker's last open
    # interval short enough to re-close inside the heal_guard (2.5 s)
    return ResolverConfig(
        qname_minimization=False,
        max_retries=2,
        serve_stale_window=45.0,
        health=HealthConfig(
            mode="adaptive", base_timeout=0.3, rto_min=0.1, rto_max=0.5,
            failure_threshold=3, backoff_base=0.3, backoff_cap=0.8,
        ),
    )


@dataclass
class _Cast:
    root: AuthoritativeServer
    target: AuthoritativeServer
    resolver: RecursiveResolver
    shim: DccShim
    pool: EngineClient
    fresh: EngineClient
    attack: EngineClient

    @property
    def nodes(self) -> List[Any]:
        return [self.root, self.target, self.resolver,
                self.pool, self.fresh, self.attack]

    @property
    def clients(self) -> List[EngineClient]:
        return [self.pool, self.fresh, self.attack]


def _build_cast(cfg: ChaosConfig) -> _Cast:
    root_zone = build_root_zone(
        {TARGET_ORIGIN: ("ns1.target-domain.", TARGET_ANS_ADDR)}
    )
    # TTL 1 s: pool entries expire between revisits, so during the
    # outage the pool exercises serve-stale rather than plain cache hits
    target_zone = build_target_zone(
        TARGET_ORIGIN, "ns1", TARGET_ANS_ADDR, answer_ttl=1, negative_ttl=1
    )
    root = AuthoritativeServer(ROOT_ADDR, zones=[root_zone])
    target = AuthoritativeServer(
        TARGET_ANS_ADDR, zones=[target_zone], udp_payload_limit=1232
    )
    resolver = RecursiveResolver(RESOLVER_ADDR, _resolver_config())
    resolver.add_root_hint("a.root-servers.net.", ROOT_ADDR)
    shim = DccShim(
        resolver,
        DccConfig(scheduler=MopiFqConfig(default_channel_rate=cfg.channel_capacity * 10)),
    )
    shim.set_channel_capacity(
        TARGET_ANS_ADDR, cfg.channel_capacity, max(1.0, cfg.channel_capacity * 0.1)
    )
    engine_cfg = _client_engine_config(cfg)
    pool = EngineClient(
        POOL_ADDR, RESOLVER_ADDR, _pool_name,
        rate=cfg.pool_rate, total=max(1, int(cfg.pool_rate * cfg.duration)),
        config=engine_cfg,
    )
    fresh = EngineClient(
        FRESH_ADDR, RESOLVER_ADDR, _fresh_name,
        rate=cfg.fresh_rate, total=max(1, int(cfg.fresh_rate * cfg.duration)),
        config=engine_cfg,
    )
    attack = EngineClient(
        ATTACK_ADDR, RESOLVER_ADDR, _attack_name,
        rate=cfg.attack_rate, total=max(1, int(cfg.attack_rate * cfg.duration)),
        config=engine_cfg,
    )
    return _Cast(root, target, resolver, shim, pool, fresh, attack)


def _harvest(
    cfg: ChaosConfig,
    cast: _Cast,
    faults: List[FaultSpec],
    timeline: List[str],
) -> ChaosReport:
    span = fault_span(faults)
    if span is None:
        # no faults: the whole run is "pre"; SLO gating will report the
        # missing recovery window rather than inventing one
        span = (cfg.duration, cfg.duration)
    auditor = RecoveryAuditor(span, cfg.duration, cfg.slo)
    auditor.add_samples(cast.pool.samples)
    auditor.add_samples(cast.fresh.samples)

    report = ChaosReport(config=cfg, auditor=auditor, timeline=timeline)
    for client in cast.clients:
        if client.engine is not None:
            report.liveness.extend(
                f"{client.address}: {item}"
                for item in client.engine.liveness_violations(grace=_DRAIN_GRACE)
            )
        if not client.finished:
            report.liveness.append(
                f"{client.address}: {client.sent} sent but only "
                f"{sum(client.verdicts.values())} verdicts at harvest"
            )
    report.extra = {
        "backend": cfg.backend,
        "seed": cfg.seed,
        "duration": cfg.duration,
        "workload": {
            "pool_sent": cast.pool.sent,
            "fresh_sent": cast.fresh.sent,
            "attack_sent": cast.attack.sent,
        },
        "schedule": schedule_to_dicts(faults),
    }
    report.info = {
        "pool_verdicts": dict(sorted(cast.pool.verdicts.items())),
        "fresh_verdicts": dict(sorted(cast.fresh.verdicts.items())),
        "resolver_stale_served": cast.resolver.stats.stale_responses
        + cast.resolver.stats.stale_fastpath_responses,
        "resolver_breaker_opens": cast.resolver.stats.breaker_opens,
        "resolver_breaker_closes": cast.resolver.stats.breaker_closes,
        "dcc_intercepted": cast.shim.stats.queries_intercepted,
        "auth_queries": cast.target.stats.queries_received,
    }
    return report


# ----------------------------------------------------------------------
# backends
# ----------------------------------------------------------------------
def _run_sim(cfg: ChaosConfig, faults: List[FaultSpec]) -> ChaosReport:
    backend = VirtualBackend(seed=cfg.seed)
    cast = _build_cast(cfg)
    for node in cast.nodes:
        backend.attach(node)
    orchestrator = SimChaosOrchestrator(backend.net)
    orchestrator.apply(faults)
    for client in cast.clients:
        client.start()
    horizon = cfg.duration + _NOMINAL_SLACK + cfg.client_deadline + _DRAIN_GRACE
    backend.run(until=horizon)
    timeline = [f"{t:8.3f}s  {label}" for t, label in sorted(orchestrator.timeline)]
    report = _harvest(cfg, cast, faults, timeline)
    report.info["crashes"] = orchestrator.injector.stats.crashes
    report.info["recoveries"] = orchestrator.injector.stats.recoveries
    report.info["partition_cuts"] = orchestrator.injector.stats.partition_cuts
    orchestrator.close()
    return report


async def _run_live_async(cfg: ChaosConfig, faults: List[FaultSpec]) -> ChaosReport:
    backend = UdpBackend(seed=cfg.seed)
    cast = _build_cast(cfg)
    for node in cast.nodes:
        backend.attach(node)
    await backend.start()

    orchestrator = LiveChaosOrchestrator(backend.fabric, backend.clock, cfg.seed)
    await orchestrator.apply(faults)

    loop = asyncio.get_running_loop()
    loop_errors: List[str] = []
    loop.set_exception_handler(
        lambda _loop, ctx: loop_errors.append(
            str(ctx.get("exception") or ctx.get("message"))
        )
    )

    for client in cast.clients:
        client.start()
    clock = backend.clock
    hard_stop = cfg.duration + _NOMINAL_SLACK + cfg.client_deadline + _DRAIN_GRACE
    while clock.now < hard_stop:
        await asyncio.sleep(0.05)
        if all(client.finished for client in cast.clients):
            break

    timeline = [f"{t:8.3f}s  {label}" for t, label in sorted(orchestrator.timeline)]
    report = _harvest(cfg, cast, faults, timeline)
    report.loop_errors = loop_errors
    report.liveness.extend(f"tcp error: {err}" for err in backend.fabric.tcp_errors)
    report.info["crashes"] = orchestrator.stats.crashes
    report.info["restarts"] = orchestrator.stats.restarts
    report.info["proxies"] = orchestrator.stats.proxies
    report.info["spec_updates"] = orchestrator.stats.spec_updates
    for channel, stats in orchestrator.proxy_stats().items():
        report.info[f"proxy[{channel}]"] = stats

    orchestrator.close()
    await backend.aclose()
    return report


def run_chaos(cfg: ChaosConfig, faults: List[FaultSpec]) -> ChaosReport:
    if cfg.backend == "sim":
        return _run_sim(cfg, faults)
    if cfg.backend == "live":
        return asyncio.run(_run_live_async(cfg, faults))
    raise ValueError(f"unknown backend {cfg.backend!r}")


# ----------------------------------------------------------------------
# rendering + CLI
# ----------------------------------------------------------------------
def render_report(report: ChaosReport) -> str:
    from repro.analysis.provenance import provenance_header

    cfg = report.config
    auditor = report.auditor
    metrics = auditor.metrics()
    slo = metrics["slo"]
    lines = [
        provenance_header(
            "chaos_unified", seed=cfg.seed, config=cfg,
            extra={"backend": cfg.backend},
        ),
        f"=== chaos: fault schedule replay on the {cfg.backend} backend ===",
        "",
        "schedule:",
    ]
    lines.extend(f"  {json.dumps(entry, sort_keys=True)}"
                 for entry in report.extra.get("schedule", []))
    if report.timeline:
        lines.append("execution timeline (wall/virtual offsets, informational):")
        lines.extend(f"  {item}" for item in report.timeline)
    lines.append("")
    for name, (lo, hi) in auditor.windows.items():
        counts = auditor.counts[name]
        lines.append(
            f"{name:>8s} [{lo:5.2f}, {hi:5.2f}): sent={counts.sent:<4d} "
            f"noerror={counts.noerror:<4d} servfail={counts.servfail:<4d} "
            f"timeout={counts.timeout:<3d} goodput={counts.goodput:.3f}"
        )
    lines.append(f"  guard-band/tail samples excluded: {auditor.guard_excluded}")
    retained = slo["goodput_retained"]
    mttr = slo["mttr"]
    t90 = slo["time_to_90pct"]
    lines.append("")
    lines.append(
        "recovery SLOs: "
        f"goodput retained={retained if retained is not None else 'n/a'} "
        f"mttr={f'{mttr}s' if mttr is not None else 'n/a'} "
        f"time-to-90%={f'{t90}s' if t90 is not None else 'n/a'}"
    )
    lines.append("")
    lines.append("run details (informational, timing-sensitive):")
    lines.extend(f"  {key} = {report.info[key]}" for key in sorted(report.info))
    problems = report.failures()
    lines.append("")
    if problems:
        lines.append("FAILURES:")
        lines.extend(f"  - {item}" for item in problems)
    else:
        verdict = "pass" if cfg.enforce_slo else "not gated (--slo to enforce)"
        lines.append(f"liveness: ok; SLO: {verdict}")
    return "\n".join(lines)


def _load_schedule(path: Optional[str]) -> List[FaultSpec]:
    if path is None:
        return default_schedule()
    with open(path, "r", encoding="utf-8") as fh:
        return schedule_from_dicts(json.load(fh))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description="replay a fault schedule on either transport backend "
        "and audit recovery SLOs (see docs/CHAOS.md)",
    )
    parser.add_argument("--backend", choices=("sim", "live"), default="sim")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--duration", type=float, default=10.0,
                        help="send-phase length in seconds")
    parser.add_argument("--schedule", default=None, metavar="FILE",
                        help="JSON fault schedule (default: the built-in "
                        "outage+partition+degradation plan; see "
                        "examples/chaos_schedule.json)")
    parser.add_argument("--out", default=None,
                        help="also write the human report to this file")
    parser.add_argument("--metrics-out", default=None, metavar="FILE",
                        help="write the canonical metrics JSON here "
                        "(default results/chaos_<backend>.json)")
    parser.add_argument("--obs-out", default=None, metavar="FILE",
                        help="export the observability registry as JSONL")
    parser.add_argument("--check-against", default=None, metavar="FILE",
                        help="fail unless FILE is byte-identical to this "
                        "run's canonical metrics JSON")
    parser.add_argument("--slo", action="store_true",
                        help="gate the exit status on the recovery SLOs")
    parser.add_argument("--min-recovery", type=float, default=0.8,
                        help="required recovery/pre goodput fraction")
    parser.add_argument("--max-mttr", type=float, default=None,
                        help="optional MTTR ceiling in seconds")
    args = parser.parse_args(argv)

    faults = _load_schedule(args.schedule)
    cfg = ChaosConfig(
        backend=args.backend,
        seed=args.seed,
        duration=args.duration,
        slo=SloConfig(
            min_recovery_fraction=args.min_recovery, max_mttr=args.max_mttr
        ),
        enforce_slo=args.slo,
    )
    report = run_chaos(cfg, faults)
    rendered = render_report(report)
    print(rendered)

    obs = Observability()
    report.auditor.emit(obs)
    for key in ("crashes", "restarts", "recoveries", "proxies", "spec_updates"):
        if key in report.info:
            obs.inc(f"chaos.exec.{key}", report.info[key])
    if args.obs_out:
        obs_dir = os.path.dirname(args.obs_out)
        if obs_dir:
            os.makedirs(obs_dir, exist_ok=True)
        with open(args.obs_out, "w", encoding="utf-8") as fh:
            fh.write(metrics_jsonl(obs.metrics))

    canonical = report.canonical_metrics()
    metrics_path = args.metrics_out or os.path.join(
        "results", f"chaos_{cfg.backend}.json"
    )
    metrics_dir = os.path.dirname(metrics_path)
    if metrics_dir:
        os.makedirs(metrics_dir, exist_ok=True)
    with open(metrics_path, "w", encoding="utf-8") as fh:
        fh.write(canonical)
    print(f"\n[metrics written to {metrics_path}]")

    status = 1 if report.failures() else 0
    if args.check_against:
        with open(args.check_against, "r", encoding="utf-8") as fh:
            expected = fh.read()
        if expected != canonical:
            print(f"determinism check FAILED against {args.check_against}: "
                  "metrics JSON differs")
            status = 1
        else:
            print(f"determinism check ok against {args.check_against}")
    if args.out:
        out_dir = os.path.dirname(args.out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(rendered + "\n")
        print(f"[report written to {args.out}]")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
