"""Figure 2: rate limits measured on 45 open resolvers.

Runs the Appendix A probing methodology (reimplemented in
:mod:`repro.measure.prober`) against the synthetic 45-resolver
population (Table 3 names, hidden profiles drawn to match the paper's
findings) and reports the Figure 2 histogram:

- IRL WC / IRL NX: ingress limits probed with wildcard / NXDOMAIN
  patterns, bucketed into 1-100 / 101-500 / 501-1500 / 1501-5000 /
  Uncertain;
- ERL CQ / ERL FF: egress limits probed with the two amplification
  patterns, same buckets.

Because the ground truth is known here (unlike on the real Internet),
the driver also reports the estimator's bucket-level accuracy -- a
validation the paper could not perform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.report import render_table
from repro.measure.population import ResolverProfile, bucket_of, build_population
from repro.measure.prober import ProbeConfig, RateLimitProber

BUCKET_LABELS = ["1-100", "101-500", "501-1500", "1501-5000", "Uncertain"]


@dataclass
class ResolverMeasurement:
    profile: ResolverProfile
    irl_wc: Optional[float]
    irl_nx: Optional[float]
    erl_cq: Optional[float]
    erl_ff: Optional[float]


@dataclass
class Figure2Result:
    measurements: List[ResolverMeasurement]
    #: series label -> bucket label -> count (the Figure 2 bars)
    histogram: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def truth_histogram(self) -> Dict[str, Dict[str, int]]:
        """Ground-truth buckets (not available to the paper's authors)."""
        out = {"IRL true": _empty_buckets(), "ERL true": _empty_buckets()}
        for m in self.measurements:
            out["IRL true"][bucket_of(m.profile.ingress_limit)] += 1
            out["ERL true"][bucket_of(m.profile.egress_limit)] += 1
        return out

    def bucket_accuracy(self) -> float:
        """Fraction of (resolver, IRL-WC) estimates in the true bucket."""
        hits = sum(
            1
            for m in self.measurements
            if bucket_of(m.irl_wc) == bucket_of(m.profile.ingress_limit)
        )
        return hits / max(1, len(self.measurements))


def _empty_buckets() -> Dict[str, int]:
    return {label: 0 for label in BUCKET_LABELS}


def run_figure2(
    scale: float = 0.1,
    resolver_count: Optional[int] = None,
    seed: int = 2024,
    probe_config: Optional[ProbeConfig] = None,
) -> Figure2Result:
    """Probe the population and build the Figure 2 histogram.

    ``scale`` compresses rates/durations (0.1 keeps the full sweep
    laptop-sized); ``resolver_count`` limits the population for quick
    runs (None = all 45).
    """
    population = build_population(seed=seed)
    if resolver_count is not None:
        population = population[:resolver_count]

    measurements: List[ResolverMeasurement] = []
    for profile in population:
        config = probe_config or ProbeConfig(scale=scale)
        prober = RateLimitProber(profile, config, seed=seed)
        irl_wc = prober.probe_ingress("WC")
        irl_nx = prober.probe_ingress("NX")
        erl_cq = prober.probe_egress("CQ", irl_wc.limit)
        erl_ff = prober.probe_egress("FF", irl_wc.limit)
        measurements.append(
            ResolverMeasurement(
                profile=profile,
                irl_wc=irl_wc.limit,
                irl_nx=irl_nx.limit,
                erl_cq=erl_cq.limit,
                erl_ff=erl_ff.limit,
            )
        )

    result = Figure2Result(measurements=measurements)
    series = {
        "IRL WC": [m.irl_wc for m in measurements],
        "IRL NX": [m.irl_nx for m in measurements],
        "ERL CQ": [m.erl_cq for m in measurements],
        "ERL FF": [m.erl_ff for m in measurements],
    }
    for label, limits in series.items():
        buckets = _empty_buckets()
        for limit in limits:
            buckets[bucket_of(limit)] += 1
        result.histogram[label] = buckets
    return result


def main(scale: float = 0.1, resolver_count: Optional[int] = None) -> None:
    from repro.analysis.provenance import provenance_header

    print(provenance_header(
        "fig2", scale=scale, config={"resolver_count": resolver_count}
    ))
    result = run_figure2(scale=scale, resolver_count=resolver_count)
    print(f"=== Figure 2: rate limits across {len(result.measurements)} resolvers "
          f"(probe scale={scale}) ===\n")
    headers = ["series"] + BUCKET_LABELS
    rows = [
        [label] + [buckets[b] for b in BUCKET_LABELS]
        for label, buckets in result.histogram.items()
    ]
    truth = result.truth_histogram()
    rows.append(["-" * 6] + ["" for _ in BUCKET_LABELS])
    rows.extend(
        [label] + [buckets[b] for b in BUCKET_LABELS] for label, buckets in truth.items()
    )
    print(render_table(headers, rows))
    print(f"\nIRL-WC bucket accuracy vs hidden ground truth: "
          f"{result.bucket_accuracy():.0%}")


if __name__ == "__main__":
    import sys

    main(scale=float(sys.argv[1]) if len(sys.argv) > 1 else 0.1,
         resolver_count=int(sys.argv[2]) if len(sys.argv) > 2 else None)
