"""Table 1: DCC state vs resolver state, by granularity.

Runs a short mixed workload through a DCC-enabled resolver and snapshots
both sides' live state entries:

=============  ===============================  ==========================
Granularity    Resolver                         DCC
=============  ===============================  ==========================
per-client     policing / ingress-RL entries    monitoring metrics,
                                                pre-queue policies
per-server     NS info + RL state (cache NS/A   queueing state (per-output
               entries, SRTT table)             rounds, channel buckets)
per-request    resolution state (pending        query statistics + signal
               requests, in-flight queries)     status
=============  ===============================  ==========================

The paper's claim (Section 3.2.4): DCC's state is asymptotically no
larger than the resolver's, and concretely smaller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.report import render_table
from repro.dnscore.rdata import RRType
from repro.experiments.common import AttackScenario, ScenarioConfig
from repro.workloads.schedule import ClientSpec


@dataclass
class StateSnapshot:
    resolver: Dict[str, int]
    dcc: Dict[str, int]

    def dcc_not_larger(self) -> bool:
        """DCC total entries <= resolver total entries."""
        return sum(self.dcc.values()) <= sum(self.resolver.values())


def run_table1(
    duration: float = 10.0,
    clients: int = 8,
    rate: float = 100.0,
    seed: int = 42,
) -> StateSnapshot:
    config = ScenarioConfig(
        seed=seed,
        duration=duration,
        channel_capacity=2000.0,
        use_dcc=True,
    )
    scenario = AttackScenario(config)
    specs = [
        ClientSpec(f"client{i}", 0.0, duration, rate, "WC") for i in range(clients)
    ]
    scenario.add_clients(specs)
    # Snapshot mid-run (state is transient; at the end it would be empty).
    scenario_clients = scenario.clients
    for client in scenario_clients.values():
        client.start()
    scenario.sim.run(until=duration * 0.8)

    resolver = scenario.resolvers[0]
    shim = scenario.shims[0]

    # Resolver-side state entries.
    cache_entries = len(resolver.cache)
    pending_requests = resolver.pending_request_count()
    inflight_queries = len(resolver._query_registry)
    srtt_entries = len(resolver.health.srtt_table())
    resolver_state = {
        "per-client (RL/policing)": (
            resolver.ingress_rl.tracked_keys() if resolver.ingress_rl else clients
        ),
        "per-server (NS info, RL, SRTT)": cache_entries + srtt_entries,
        "per-request (resolution state)": pending_requests + inflight_queries,
    }

    dcc_state = {
        "per-client (monitoring, policies)": shim.monitor.tracked_clients()
        + len(shim.engine.active_policies(scenario.sim.now)),
        "per-server (queueing state)": shim.tracked_servers()
        + len(shim.scheduler._rate_lim),
        "per-request (query stats, signals)": shim.tables.open_request_count()
        + shim.scheduler.total_depth,
    }
    return StateSnapshot(resolver=resolver_state, dcc=dcc_state)


def main() -> None:
    from repro.analysis.provenance import provenance_header

    print(provenance_header("table1"))
    snapshot = run_table1()
    print("=== Table 1: live state entries, resolver vs DCC ===\n")
    rows = []
    for (r_label, r_count), (d_label, d_count) in zip(
        snapshot.resolver.items(), snapshot.dcc.items()
    ):
        rows.append([r_label, r_count, d_label, d_count])
    print(render_table(["resolver state", "#", "DCC state", "#"], rows))
    verdict = "<=" if snapshot.dcc_not_larger() else ">"
    print(f"\nDCC total {sum(snapshot.dcc.values())} {verdict} "
          f"resolver total {sum(snapshot.resolver.values())} "
          f"(paper: DCC state is no larger)")


if __name__ == "__main__":
    main()
