"""Figure 11: processing delay added by DCC.

The paper measures the time a vanilla vs DCC-enabled resolver takes to
process one cache-missing WC request (1M requests; RTT to the ANS
~1 ms dominates), under four combinations of tracked clients (C) and
servers (S) in {1K, 100K}, and plots the CDF -- showing DCC's added
delay is marginal.

Reproduction in two parts:

- **end-to-end (virtual time)**: request latency through the simulator
  for vanilla vs DCC, capturing queueing/scheduling delay in an
  uncongested system (should be ~RTT for both);
- **control-path (wall clock)**: the real Python cost of DCC's per-query
  work (attribution decode, policing check, enqueue, dequeue, monitor
  updates) with the state tables pre-populated to C clients and S
  servers -- the analogue of the prototype's added CPU time, whose CDF
  should be flat across table sizes (constant/log-time operations).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.report import render_table
from repro.analysis.series import percentile
from repro.dcc.monitor import AnomalyMonitor, MonitorConfig
from repro.dcc.mopifq import MopiFq, MopiFqConfig
from repro.dcc.policing import PolicyEngine
from repro.dcc.state import DccStateTables
from repro.dnscore.rdata import RCode
from repro.experiments.common import AttackScenario, ScenarioConfig
from repro.workloads.schedule import ClientSpec


@dataclass
class DelaySample:
    label: str
    samples_ms: List[float]

    def summary(self) -> List[object]:
        return [
            self.label,
            f"{percentile(self.samples_ms, 50):.3f}",
            f"{percentile(self.samples_ms, 90):.3f}",
            f"{percentile(self.samples_ms, 99):.3f}",
        ]


# ----------------------------------------------------------------------
# end-to-end virtual-time latency
# ----------------------------------------------------------------------

def run_end_to_end(use_dcc: bool, requests: int = 2000, seed: int = 42) -> DelaySample:
    """Uncongested request latency distribution through the simulator."""
    rate = 200.0
    duration = requests / rate
    config = ScenarioConfig(
        seed=seed,
        duration=duration,
        channel_capacity=10_000.0,
        use_dcc=use_dcc,
    )
    scenario = AttackScenario(config)
    scenario.add_clients([ClientSpec("probe", 0.0, duration, rate, "WC")])
    scenario.run()
    samples = [
        record.latency * 1000.0
        for record in scenario.clients["probe"].records
        if record.latency is not None
    ]
    return DelaySample("DCC (end-to-end)" if use_dcc else "vanilla (end-to-end)", samples)


# ----------------------------------------------------------------------
# wall-clock control-path cost
# ----------------------------------------------------------------------

def run_control_path(
    n_clients: int, n_servers: int, requests: int = 20_000, seed: int = 13
) -> DelaySample:
    """Per-request wall-clock cost of the DCC datapath at (C, S) scale."""
    import random

    rng = random.Random(seed)
    scheduler = MopiFq(MopiFqConfig(default_channel_rate=1e9))
    monitor = AnomalyMonitor(MonitorConfig())
    engine = PolicyEngine()
    tables = DccStateTables()
    clients = [f"10.{i >> 16 & 255}.{i >> 8 & 255}.{i & 255}" for i in range(n_clients)]
    servers = [f"172.{i >> 16 & 255}.{i >> 8 & 255}.{i & 255}" for i in range(n_servers)]
    now = 0.0
    for client in clients:
        monitor.record_request(client, now)
    for server in servers:
        scheduler.channel_bucket(server)

    samples: List[float] = []
    for i in range(requests):
        now += 0.0005
        client = clients[rng.randrange(n_clients)]
        server = servers[rng.randrange(n_servers)]
        start = time.perf_counter()
        state = tables.open_request(client, i, now)
        engine.check(client, now)
        monitor.record_query(client, now)
        scheduler.enqueue(client, server, i, now)
        item = scheduler.dequeue(now)
        if item is not None:
            monitor.record_answer(item.source, RCode.NOERROR, now)
        tables.close_request(client, i)
        samples.append((time.perf_counter() - start) * 1000.0)
    label = f"DCC path (C={n_clients // 1000}K, S={n_servers // 1000}K)"
    return DelaySample(label, samples)


def run_figure11(
    requests: int = 20_000,
    end_to_end_requests: int = 2000,
    combos: Optional[List[Tuple[int, int]]] = None,
) -> List[DelaySample]:
    combos = combos or [(1000, 1000), (1000, 100_000), (100_000, 1000), (100_000, 100_000)]
    results = [
        run_end_to_end(False, requests=end_to_end_requests),
        run_end_to_end(True, requests=end_to_end_requests),
    ]
    results.extend(run_control_path(c, s, requests=requests) for c, s in combos)
    return results


def main(quick: bool = False) -> None:
    from repro.analysis.provenance import provenance_header

    print(provenance_header("fig11", config={"quick": quick}))
    combos = [(1000, 1000), (100_000, 100_000)] if quick else None
    requests = 5000 if quick else 20_000
    results = run_figure11(requests=requests, combos=combos)
    print("=== Figure 11: request processing delay (ms) ===")
    print(render_table(
        ["series", "p50", "p90", "p99"],
        [r.summary() for r in results],
    ))
    vanilla = next(r for r in results if r.label.startswith("vanilla"))
    dcc = next(r for r in results if r.label.startswith("DCC (end"))
    added = percentile(dcc.samples_ms, 50) - percentile(vanilla.samples_ms, 50)
    print(f"\nDCC median added end-to-end delay: {added:.3f} ms "
          f"(paper: marginal, network-dominated)")


if __name__ == "__main__":
    import sys

    main(quick="--quick" in sys.argv)
