"""Figure 8: DCC's attack resilience in three adversarial scenarios.

Setup (paper Section 5.1): four clients (heavy / medium / light /
attacker, Table 2) share one recursive resolver whose channel to the
authoritative nameserver is capped at 1000 QPS.  Each scenario is run
twice -- vanilla resolver vs DCC-enabled resolver -- and the per-second
effective QPS of every client is reported:

- **Scenario 1 (WC)**: the attacker is indistinguishable from benign
  clients; DCC's fair queuing alone must level the field.
- **Scenario 2 (NX)**: pseudo-random-subdomain abuse; DCC's monitor
  (NXDOMAIN ratio > 0.2) convicts abusers and rate-limits them to
  100 QPS for 20 s; the heavy client stops abusing at t=20 s and regains
  its share once its policy expires.
- **Scenario 3 (FF)**: amplification; DCC convicts the attacker
  (amplification anomaly) and blocks it for 30 s.

DCC parameters follow the paper: queue depth 100, MAX_ROUND 75, pool
100K, monitoring window 2 s, 10 alarms / 60 s suspicion.

``scale`` shrinks rates and the timeline together for quick runs; the
figure shape is scale-invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List

from repro.analysis.report import format_series, render_table, sparkline
from repro.dcc.monitor import AnomalyKind, MonitorConfig
from repro.dcc.policing import PolicyKind, PolicyTemplate
from repro.experiments.common import AttackScenario, ScenarioConfig, ScenarioResult
from repro.workloads.schedule import TABLE2_SCENARIOS, table2_clients

#: Figure-8 DCC policy configuration (Section 5.1).
def paper_policy_templates(rate_scale: float = 1.0, time_scale: float = 1.0) -> Dict:
    return {
        AnomalyKind.NXDOMAIN: PolicyTemplate(
            PolicyKind.RATE_LIMIT, duration=20.0 * time_scale, rate=100.0 * rate_scale
        ),
        AnomalyKind.AMPLIFICATION: PolicyTemplate(PolicyKind.BLOCK, duration=30.0 * time_scale),
        AnomalyKind.RATE: PolicyTemplate(
            PolicyKind.RATE_LIMIT, duration=20.0 * time_scale, rate=100.0 * rate_scale
        ),
    }


def paper_monitor_config(time_scale: float = 1.0) -> MonitorConfig:
    return MonitorConfig(
        window=2.0 * time_scale,
        alarm_threshold=10,
        suspicion_period=60.0 * time_scale,
        nxdomain_ratio_threshold=0.2,
        amplification_threshold=5.0,
    )


@dataclass
class Figure8Run:
    scenario: str
    use_dcc: bool
    result: ScenarioResult

    def series(self, client: str) -> List[float]:
        if client == "attacker" and self.scenario == "amplification":
            # Figure 8 caption: for the FF attacker, effective QPS is
            # "calculated from the actual queries received by our
            # nameserver".
            return self.result.wire_qps.get("attacker", [0.0] * int(self.result.duration))
        return self.result.effective_qps[client]


def run_scenario(
    scenario: str,
    use_dcc: bool,
    scale: float = 1.0,
    seed: int = 42,
    attacker_rate: float = None,
) -> Figure8Run:
    """One Figure 8 cell: (scenario, vanilla|DCC)."""
    if scenario not in TABLE2_SCENARIOS:
        raise ValueError(f"scenario must be one of {sorted(TABLE2_SCENARIOS)}")
    # Only the *timeline* is scaled; rates, the channel capacity, and the
    # queue configuration stay at paper values so queuing-delay dynamics
    # (wait vs timeout) are preserved exactly.
    specs = table2_clients(scenario, attacker_rate=attacker_rate, time_scale=scale)
    duration = 60.0 * scale
    config = ScenarioConfig(
        seed=seed,
        duration=duration,
        channel_capacity=1000.0,
        use_dcc=use_dcc,
        monitor=paper_monitor_config(time_scale=scale),
        policy_templates=paper_policy_templates(time_scale=scale),
        max_poq_depth=100,
        max_round=75,
        ff_instances=200,
    )
    scenario_obj = AttackScenario(config)
    scenario_obj.add_clients(specs)
    result = scenario_obj.run()
    return Figure8Run(scenario=scenario, use_dcc=use_dcc, result=result)


def run_figure8(scale: float = 1.0, seed: int = 42) -> Dict[str, Dict[str, Figure8Run]]:
    """All six Figure 8 panels: three scenarios x {vanilla, dcc}."""
    out: Dict[str, Dict[str, Figure8Run]] = {}
    for scenario in ("wildcard", "nxdomain", "amplification"):
        out[scenario] = {
            "vanilla": run_scenario(scenario, use_dcc=False, scale=scale, seed=seed),
            "dcc": run_scenario(scenario, use_dcc=True, scale=scale, seed=seed),
        }
    return out


def summarize(run: Figure8Run, phases: List[tuple]) -> List[List[object]]:
    """Mean effective QPS per client over labelled time phases."""
    rows = []
    for client in ("attacker", "heavy", "medium", "light"):
        series = run.series(client)
        row: List[object] = [client]
        for _, lo, hi in phases:
            lo_i, hi_i = int(lo), min(int(hi), len(series))
            window = series[lo_i:hi_i]
            row.append(round(sum(window) / max(1, len(window))))
        rows.append(row)
    return rows


def main(scale: float = 1.0, seed: int = 42) -> None:
    from repro.analysis.provenance import provenance_header

    print(provenance_header("fig8", seed=seed, scale=scale))
    runs = run_figure8(scale=scale, seed=seed)
    duration = 60.0 * scale
    phases = [
        ("0-10s", 0 * scale, 10 * scale),
        ("10-20s", 10 * scale, 20 * scale),
        ("20-50s", 20 * scale, 50 * scale),
        ("50-60s", 50 * scale, 60 * scale),
    ]
    for scenario, pair in runs.items():
        print(f"\n=== {TABLE2_SCENARIOS[scenario]} -- scenario '{scenario}' "
              f"(scale={scale}) ===")
        for label in ("vanilla", "dcc"):
            run = pair[label]
            print(f"\n--- {label.upper()} resolver: mean effective QPS per phase ---")
            print(render_table(["client"] + [p[0] for p in phases], summarize(run, phases)))
            for client in ("attacker", "heavy", "medium", "light"):
                print(f"  {client:>9s} |{sparkline(run.series(client))}|")


if __name__ == "__main__":
    import sys

    main(scale=float(sys.argv[1]) if len(sys.argv) > 1 else 1.0)
