"""Chaos resilience: DCC operating *through* infrastructure faults.

The paper's evaluation (Figures 8/9) assumes the resolution
infrastructure stays healthy while adversarial congestion rages.  This
experiment drops that assumption: mid-attack, the primary target
authoritative server crashes and the path to its surviving replica
degrades (a loss/latency ramp), then everything heals.  Each fault
schedule is run twice -- vanilla resolver vs DCC-enabled resolver --
under an identical virtual-time fault plan, and we report:

- **availability** -- fraction of benign requests answered successfully,
  overall and during the fault window;
- **benign goodput** -- summed effective QPS of the benign clients,
  averaged over the pre-fault / fault / post-fault windows;
- **recovery time** -- seconds from the fault clearing until smoothed
  benign goodput regains 95% of its pre-fault baseline.

The interesting question is whether DCC helps or hurts when capacity
halves under it: fair queuing should keep dividing the *remaining*
capacity evenly instead of letting the attacker starve benign clients
harder, so DCC-on benign goodput should dominate DCC-off throughout.

Unlike Table 2, every benign client runs for the whole measurement
window so the pre/during/post goodput windows are directly comparable.
The attacker is the NX abuser at paper rate.  ``scale`` compresses the
timeline only (rates stay at paper values), as in the other drivers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.report import render_table, sparkline
from repro.experiments.common import AttackScenario, ScenarioConfig, ScenarioResult
from repro.experiments.fig8_resilience import (
    paper_monitor_config,
    paper_policy_templates,
)
from repro.netsim.faults import FaultStats, LinkDegradation, NodeOutage
from repro.workloads.schedule import ClientSpec

BENIGN_CLIENTS = ("heavy", "medium", "light")

#: goodput must regain this fraction of the pre-fault baseline to count
#: as recovered
RECOVERY_THRESHOLD = 0.95


@dataclass(frozen=True)
class FaultPlan:
    """The chaos schedule, in unscaled (paper-timeline) seconds.

    During [start, end): the primary target nameserver is down for the
    first ``crash_fraction`` of the window, and the links between the
    resolvers and the surviving replicas carry an added loss/latency
    impairment that ramps up over the first ``ramp_fraction`` of the
    window and clears at ``end``.
    """

    start: float = 25.0
    end: float = 45.0
    crash_fraction: float = 0.75
    loss: float = 0.35
    latency: float = 0.020
    ramp_fraction: float = 0.25


def chaos_clients(time_scale: float = 1.0) -> List[ClientSpec]:
    """Table 2 rates, but benign clients span the whole run so goodput
    windows before/during/after the fault are comparable."""
    specs = [
        ClientSpec("heavy", 0.0, 60.0, 600.0, "WC"),
        ClientSpec("medium", 0.0, 60.0, 350.0, "WC"),
        ClientSpec("light", 0.0, 60.0, 150.0, "WC"),
        ClientSpec("attacker", 10.0, 60.0, 1100.0, "NX", is_attacker=True),
    ]
    return [spec.scaled(time_scale) for spec in specs]


@dataclass
class ChaosRun:
    """One (fault plan, vanilla|DCC) cell plus its derived metrics."""

    use_dcc: bool
    result: ScenarioResult
    bucket: float
    fault_start: float
    fault_end: float
    availability: float
    fault_availability: float
    baseline_goodput: float
    fault_goodput: float
    post_goodput: float
    recovery_time: Optional[float]
    goodput_series: List[float]
    attacker_series: List[float]
    fault_stats: FaultStats
    timeline: str

    def metrics(self) -> Dict[str, object]:
        """The headline numbers (used by the determinism test)."""
        return {
            "availability": self.availability,
            "fault_availability": self.fault_availability,
            "baseline_goodput": self.baseline_goodput,
            "fault_goodput": self.fault_goodput,
            "post_goodput": self.post_goodput,
            "recovery_time": self.recovery_time,
            "crashes": self.fault_stats.crashes,
            "recoveries": self.fault_stats.recoveries,
        }


def schedule_faults(scenario: AttackScenario, plan: FaultPlan, scale: float) -> None:
    """Install ``plan`` on a built scenario (before ``run()``)."""
    start, end = plan.start * scale, plan.end * scale
    window = end - start
    primary = scenario.target_ans_addrs[0]
    scenario.injector.add_node_outage(
        NodeOutage(address=primary, at=start, duration=window * plan.crash_fraction)
    )
    survivors = scenario.target_ans_addrs[1:]
    if survivors:
        scenario.injector.add_link_degradation(
            LinkDegradation(
                src=[r.address for r in scenario.resolvers],
                dst=survivors,
                start=start,
                end=end,
                loss=plan.loss,
                latency=plan.latency * scale,
                ramp=window * plan.ramp_fraction,
            )
        )


def benign_goodput_series(
    result: ScenarioResult, bucket: float
) -> List[float]:
    """Summed effective QPS of the benign clients, bucketed."""
    total: Optional[List[float]] = None
    for name in BENIGN_CLIENTS:
        series = result.clients[name].effective_qps_series(result.duration, bucket=bucket)
        if total is None:
            total = list(series)
        else:
            total = [a + b for a, b in zip(total, series)]
    return total or []


def _mean_over(series: List[float], bucket: float, lo: float, hi: float) -> float:
    lo_i, hi_i = int(lo / bucket), min(int(hi / bucket), len(series))
    window = series[lo_i:hi_i]
    return sum(window) / max(1, len(window))


def _smooth(series: List[float], radius: int = 1) -> List[float]:
    out = []
    for i in range(len(series)):
        window = series[max(0, i - radius): i + radius + 1]
        out.append(sum(window) / len(window))
    return out


def recovery_time(
    series: List[float],
    bucket: float,
    fault_end: float,
    baseline: float,
    threshold: float = RECOVERY_THRESHOLD,
) -> Optional[float]:
    """Seconds from ``fault_end`` until smoothed goodput regains
    ``threshold * baseline``; None if it never does in-series."""
    if baseline <= 0:
        return 0.0
    target = threshold * baseline
    smoothed = _smooth(series)
    for i in range(len(smoothed)):
        at = i * bucket
        if at >= fault_end and smoothed[i] >= target:
            return at - fault_end
    return None


def _benign_availability(result: ScenarioResult, lo: float, hi: float) -> float:
    total = successes = 0
    for name in BENIGN_CLIENTS:
        for record in result.clients[name].records:
            if lo <= record.sent_at < hi:
                total += 1
                successes += 1 if record.success else 0
    return successes / total if total else 0.0


def run_chaos(
    use_dcc: bool,
    scale: float = 1.0,
    seed: int = 42,
    plan: Optional[FaultPlan] = None,
) -> ChaosRun:
    """One chaos cell: the NX attack plus ``plan``'s fault schedule."""
    plan = plan or FaultPlan()
    duration = 60.0 * scale
    bucket = 1.0 * scale
    config = ScenarioConfig(
        seed=seed,
        duration=duration,
        channel_capacity=1000.0,
        use_dcc=use_dcc,
        monitor=paper_monitor_config(time_scale=scale),
        policy_templates=paper_policy_templates(time_scale=scale),
        max_poq_depth=100,
        max_round=75,
        target_ans_count=2,
    )
    scenario = AttackScenario(config)
    scenario.add_clients(chaos_clients(time_scale=scale))
    schedule_faults(scenario, plan, scale)
    result = scenario.run()

    fault_start, fault_end = plan.start * scale, plan.end * scale
    goodput = benign_goodput_series(result, bucket)
    # Baseline: steady attack state before the fault (attack starts at
    # 10s paper-time; [15s, fault) avoids the attack onset transient).
    baseline = _mean_over(goodput, bucket, 15.0 * scale, fault_start)
    return ChaosRun(
        use_dcc=use_dcc,
        result=result,
        bucket=bucket,
        fault_start=fault_start,
        fault_end=fault_end,
        availability=_benign_availability(result, 0.0, duration),
        fault_availability=_benign_availability(result, fault_start, fault_end),
        baseline_goodput=baseline,
        fault_goodput=_mean_over(goodput, bucket, fault_start, fault_end),
        post_goodput=_mean_over(goodput, bucket, fault_end, duration),
        recovery_time=recovery_time(goodput, bucket, fault_end, baseline),
        goodput_series=goodput,
        attacker_series=result.clients["attacker"].effective_qps_series(
            duration, bucket=bucket
        ),
        fault_stats=scenario.injector.stats,
        timeline=scenario.injector.render_timeline(),
    )


def run_pair(
    scale: float = 1.0, seed: int = 42, plan: Optional[FaultPlan] = None
) -> Dict[str, ChaosRun]:
    """Vanilla and DCC under the identical fault schedule."""
    return {
        "vanilla": run_chaos(use_dcc=False, scale=scale, seed=seed, plan=plan),
        "dcc": run_chaos(use_dcc=True, scale=scale, seed=seed, plan=plan),
    }


def render_report(runs: Dict[str, ChaosRun], scale: float, seed: int) -> str:
    lines: List[str] = []
    lines.append(
        "=== Chaos resilience: primary-ANS crash + loss ramp during an "
        f"NX attack (scale={scale}, seed={seed}) ==="
    )
    any_run = next(iter(runs.values()))
    lines.append(
        f"\nfault window [{any_run.fault_start:.1f}s, {any_run.fault_end:.1f}s); "
        "schedule (identical for both runs):"
    )
    lines.append(any_run.timeline)

    rows = []
    for label, run in runs.items():
        recovered = (
            f"{run.recovery_time:.1f}s" if run.recovery_time is not None else "never"
        )
        rows.append(
            [
                label,
                f"{run.availability:.3f}",
                f"{run.fault_availability:.3f}",
                round(run.baseline_goodput),
                round(run.fault_goodput),
                round(run.post_goodput),
                recovered,
            ]
        )
    lines.append("\nbenign availability and goodput (summed effective QPS):")
    lines.append(
        render_table(
            [
                "resolver",
                "avail(all)",
                "avail(fault)",
                "goodput pre",
                "fault",
                "post",
                "recovery",
            ],
            rows,
        )
    )

    lines.append("\nper-second series (fault window between the dips):")
    for label, run in runs.items():
        lines.append(f"  {label:>7s} benign   |{sparkline(run.goodput_series)}|")
        lines.append(f"  {label:>7s} attacker |{sparkline(run.attacker_series)}|")

    dcc, vanilla = runs["dcc"], runs["vanilla"]
    verdict = (
        "DCC sustains benign goodput through the fault"
        if dcc.fault_goodput >= vanilla.fault_goodput
        else "WARNING: DCC underperformed vanilla during the fault"
    )
    lines.append(
        f"\n{verdict}: {round(dcc.fault_goodput)} vs {round(vanilla.fault_goodput)} "
        "QPS while capacity was degraded."
    )
    return "\n".join(lines)


def main(scale: float = 0.25, seed: int = 42, out: Optional[str] = None) -> None:
    if scale <= 0:
        raise SystemExit(f"--scale must be positive, got {scale}")
    from repro.analysis.provenance import provenance_header

    runs = run_pair(scale=scale, seed=seed)
    header = provenance_header("chaos", seed=seed, scale=scale)
    report = header + "\n" + render_report(runs, scale=scale, seed=seed)
    print(report)
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            fh.write(report + "\n")
        print(f"\n[written to {out}]")


if __name__ == "__main__":
    import sys

    main(scale=float(sys.argv[1]) if len(sys.argv) > 1 else 0.25)
