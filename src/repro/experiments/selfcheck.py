"""Determinism self-check: run one scenario twice, diff the event traces.

The whole evaluation depends on the simulator being a deterministic
function of its seed (ROADMAP tier-1 assumption; paper Section 5 reports
seed-averaged results).  This driver proves the property end-to-end on a
DCC-enabled attack scenario:

1. build the Table 2 NX scenario (attack traffic, anomaly monitoring,
   policing, MOPI-FQ, signaling all active -- the widest code surface);
2. run it to completion with a :class:`~repro.netsim.trace.MessageTrace`
   attached and SimSan enabled (so every run also passes the runtime
   invariant sanitizer);
3. hash every delivered message (time, endpoints, question, rcode,
   size) plus the event count into a SHA-256 digest;
4. repeat from scratch and compare digests.

Any wall-clock read, unseeded RNG draw, or hash-order-dependent
iteration sneaking into the simulation path shows up as a digest
mismatch here long before it would corrupt a figure.

CLI: ``repro-experiments selfcheck [--seed N] [--scale S] [--runs K]``.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional

from repro import sanitize
from repro.experiments.common import AttackScenario, ScenarioConfig
from repro.netsim.trace import MessageTrace
from repro.workloads.schedule import table2_clients


def trace_digest(seed: int = 42, scale: float = 0.05, obs=None) -> str:
    """SHA-256 over the full delivered-message trace of one fresh run.

    ``obs`` optionally enables the observability subsystem
    (:class:`repro.obs.ObsConfig`); the digest must not change when it
    does -- instrumentation is forbidden from perturbing the simulation.
    """
    specs = table2_clients("nxdomain", time_scale=scale)
    config = ScenarioConfig(
        seed=seed,
        duration=60.0 * scale,
        channel_capacity=1000.0,
        use_dcc=True,
        ff_instances=20,
        obs=obs,
    )
    scenario = AttackScenario(config)
    trace = MessageTrace(scenario.net, max_records=1_000_000)
    scenario.add_clients(specs)
    result = scenario.run()

    digest = hashlib.sha256()
    for record in trace.records:
        digest.update(
            (
                f"{record.time:.9f}|{record.src}|{record.dst}|{record.question}|"
                f"{int(record.is_response)}|{record.rcode}|{record.wire_bytes}\n"
            ).encode("utf-8")
        )
    digest.update(f"events={result.events_processed}\n".encode("utf-8"))
    digest.update(f"messages={len(trace.records)}\n".encode("utf-8"))
    return digest.hexdigest()


def run_selfcheck(
    seed: int = 42, scale: float = 0.05, runs: int = 2
) -> List[str]:
    """``runs`` independent trace digests, each computed with SimSan on."""
    previous = sanitize.ENABLED
    sanitize.enable()
    try:
        return [trace_digest(seed=seed, scale=scale) for _ in range(runs)]
    finally:
        sanitize.ENABLED = previous


def main(
    seed: int = 42, scale: float = 0.05, runs: int = 2, out: Optional[str] = None
) -> int:
    """Print per-run digests; exit 0 iff all runs hashed identically."""
    from repro.analysis.provenance import provenance_header

    digests = run_selfcheck(seed=seed, scale=scale, runs=runs)
    lines = [
        provenance_header("selfcheck", seed=seed, scale=scale, config={"runs": runs}),
        f"=== Determinism self-check (seed={seed}, scale={scale}) ===",
    ]
    for i, digest in enumerate(digests, start=1):
        lines.append(f"run {i}: {digest}")
    identical = len(set(digests)) == 1
    lines.append(
        "event-trace hashes identical across "
        f"{runs} runs -- simulation is deterministic"
        if identical
        else "EVENT-TRACE HASH MISMATCH -- simulation is NOT deterministic"
    )
    report = "\n".join(lines)
    print(report)
    if out is not None:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    return 0 if identical else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
