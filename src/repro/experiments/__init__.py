"""Experiment drivers: one module per paper table/figure.

Every module exposes ``run_*`` functions returning structured results
plus a ``main()`` that prints the same rows/series the paper reports.
All drivers accept scale knobs so the test/benchmark suites can run them
quickly; the defaults reproduce the paper's parameters.

========================  ==========================================
Module                    Reproduces
========================  ==========================================
``fig2_ratelimits``       Figure 2 (rate limits of 45 open resolvers)
``fig4_attacks``          Figure 4 (attack validation, setups a-d)
``fig8_resilience``       Figure 8 (DCC vs vanilla, three scenarios)
``fig9_signaling``        Figure 9 (signaling on/off on a fwd chain)
``fig10_overhead``        Figure 10 (state scaling: CPU/memory proxy)
``fig11_delay``           Figure 11 (added processing delay CDF)
``table1_state``          Table 1 (DCC state vs resolver state)
========================  ==========================================
"""

from repro.experiments.common import AttackScenario, ScenarioConfig, ScenarioResult

__all__ = ["AttackScenario", "ScenarioConfig", "ScenarioResult"]
