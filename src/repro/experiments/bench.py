"""``repro bench``: the performance baseline file (ROADMAP item 2).

Times the three hot paths future PRs are most likely to regress and
writes ``BENCH_<shortrev>.json`` so successive revisions accumulate
comparable baselines:

- **MOPI-FQ enqueue/dequeue** ops/sec (the per-query control-path cost
  the paper's Figure 10 bounds);
- **event-loop throughput**: virtual-time simulator events/sec;
- **fig10 quick wall time**: an end-to-end experiment as a macro probe.

Numbers are wall-clock and machine-dependent by nature -- the file
records them alongside the git revision precisely so comparisons happen
between runs on the *same* machine (CI keeps them as artifacts, not
assertions).
"""

from __future__ import annotations

import contextlib
import io
import json
import os
import subprocess
import time
from typing import Any, Dict, List, Optional

from repro._version import __version__
from repro.dcc.mopifq import MopiFq, MopiFqConfig
from repro.netsim.sim import Simulator


def short_rev() -> str:
    """The repo's short git revision, or "unknown" outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10, check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def bench_mopifq(ops: int = 50_000) -> Dict[str, float]:
    """Steady-state enqueue/dequeue churn across a realistic ID spread.

    Per-origin queues are depth-bounded (paper Section 5), so a single
    fill-then-drain pass would mostly time *rejections*; alternating
    small fill and full drain batches keeps every operation on the
    accept path.
    """
    scheduler = MopiFq(MopiFqConfig(default_channel_rate=1e9))
    clients = [f"10.0.9.{i}" for i in range(32)]
    servers = [f"10.0.3.{i}" for i in range(4)]
    batch = 256
    now = 0.0
    enqueued = drained = 0
    enqueue_elapsed = dequeue_elapsed = 0.0
    i = 0
    while enqueued + drained < ops:
        start = time.perf_counter()
        for _ in range(batch):
            scheduler.enqueue(clients[i % 32], servers[i % 4], i, now)
            i += 1
            now += 1e-6
        enqueue_elapsed += time.perf_counter() - start
        enqueued += batch
        start = time.perf_counter()
        while scheduler.dequeue(now) is not None:
            drained += 1
            now += 1e-6
        dequeue_elapsed += time.perf_counter() - start
    return {
        "enqueue_ops_per_sec": round(enqueued / max(enqueue_elapsed, 1e-9), 1),
        "dequeue_ops_per_sec": round(drained / max(dequeue_elapsed, 1e-9), 1),
        "ops": enqueued,
        "drained": drained,
    }


def _tick(sim: Simulator, remaining: int) -> None:
    if remaining > 0:
        sim.schedule(1e-6, _tick, sim, remaining - 1)


def bench_event_loop(events: int = 200_000, fanout: int = 8) -> Dict[str, float]:
    """Self-rescheduling event chains through the virtual-time heap."""
    sim = Simulator(seed=7)
    per_chain = events // fanout
    for chain in range(fanout):
        sim.schedule(1e-6 * (chain + 1), _tick, sim, per_chain - 1)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return {
        "events_per_sec": round(sim.events_processed / max(elapsed, 1e-9), 1),
        "events": sim.events_processed,
    }


def bench_fluid_tick(ticks: int = 2_000, clients: int = 1_000_000) -> Dict[str, float]:
    """Fluid-core tick rate at the million-client population.

    Drives ``FluidBridge.advance`` standalone (no event loop) over the
    scale experiment's fig8-shaped cohort mix against a private token
    bucket, reporting ticks/sec and simulated client-updates/sec --
    the number that must stay far above real time for ``repro scale``
    to hold its wall-clock budget.  Reports ``skipped=1`` when numpy is
    unavailable.
    """
    from repro.fluid import HAVE_NUMPY

    if not HAVE_NUMPY:
        return {"skipped": 1.0}

    from repro.fluid import FluidBridge, build_cohorts
    from repro.util.tokenbucket import TokenBucket
    from repro.workloads.cohorts import scale_cohort_specs

    sim = Simulator(seed=11)
    bridge = FluidBridge(sim, tick=0.1)
    specs = scale_cohort_specs(clients, duration=1e9, zone="bench.", destination="sink")
    bridge.add_channel("sink", TokenBucket(rate=20_000.0, burst=2_000.0))
    for cohort in build_cohorts(specs, seed=11):
        bridge.add_cohort(cohort)
    bridge.start()
    now = 0.0
    start = time.perf_counter()
    for _ in range(ticks):
        now += bridge.tick
        bridge.advance(now)
    elapsed = time.perf_counter() - start
    population = bridge.client_count()
    return {
        "ticks_per_sec": round(ticks / max(elapsed, 1e-9), 1),
        "client_updates_per_sec": round(ticks * population / max(elapsed, 1e-9), 1),
        "ticks": float(ticks),
        "clients": float(population),
    }


def bench_fig10_quick() -> Dict[str, float]:
    """Wall time of the quick Figure 10 run (stdout swallowed)."""
    from repro.experiments import fig10_overhead

    sink = io.StringIO()
    start = time.perf_counter()
    with contextlib.redirect_stdout(sink):
        fig10_overhead.main(quick=True)
    return {"wall_seconds": round(time.perf_counter() - start, 3)}


def run_bench(mopifq_ops: int = 50_000, events: int = 200_000) -> Dict[str, Any]:
    return {
        "rev": short_rev(),
        "repro": __version__,
        "unix_time": int(time.time()),
        "benchmarks": {
            "mopifq": bench_mopifq(mopifq_ops),
            "event_loop": bench_event_loop(events),
            "fluid_tick": bench_fluid_tick(),
            "fig10_quick": bench_fig10_quick(),
        },
    }


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro bench", description="write the perf baseline BENCH_<shortrev>.json"
    )
    parser.add_argument("--ops", type=int, default=50_000,
                        help="MOPI-FQ operations to time")
    parser.add_argument("--events", type=int, default=200_000,
                        help="simulator events to time")
    parser.add_argument("--out-dir", default="results")
    args = parser.parse_args(argv)

    payload = run_bench(mopifq_ops=args.ops, events=args.events)
    os.makedirs(args.out_dir, exist_ok=True)
    path = os.path.join(args.out_dir, f"BENCH_{payload['rev']}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for name, numbers in sorted(payload["benchmarks"].items()):
        rendered = " ".join(f"{k}={v}" for k, v in sorted(numbers.items()))
        print(f"{name}: {rendered}")
    print(f"[written to {path}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
