"""Figure 4: empirical validation of adversarial congestion.

Four resolution setups (Figure 3), each swept over attacker request
rates, reporting the benign clients' average request success ratio:

- **(a) redundant authoritative servers**: two ANS for the target
  domain, channels capped at 100 QPS each; the attacker uses the FF
  amplification pattern (MAF ~= fanout^2 ~= 50), so benign requests
  collapse at attacker rates of only a few QPS.  The paper's additional
  lines (public resolvers with different amplification behaviour) are
  reproduced as resolver variants with different FF fan-outs.
- **(b) redundant resolvers**: clients retry across two resolvers;
  hardly helps, because failed requests are re-sent through the other
  resolver and congest its channel too.
- **(c) forwarding resolver**: no amplification (WC pattern); the
  forwarder uses three upstream resolvers (ingress limits 60/100/100
  QPS, mirroring Quad101 + defaults); the success ratio starts dropping
  once the attacker approaches the RR-channel capacity.
- **(d) large resolver system**: requests are load-balanced over an
  egress set; the attack's impact is inversely proportional to the
  egress-set size (4 / 16 / 25 / 60 egresses for UltraDNS / Quad9 /
  OpenDNS / Google).

Timeline per run (Section 2.3.1): the attacker sends for 50 s; benign
clients start 5 s later and send 3 QPS for 30 s.  ``time_scale``
compresses the timeline for quick runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.report import render_table
from repro.experiments.common import AttackScenario, ScenarioConfig
from repro.workloads.schedule import ClientSpec


@dataclass
class SweepPoint:
    attacker_qps: float
    benign_success: float


@dataclass
class SweepResult:
    label: str
    points: List[SweepPoint]

    def as_rows(self) -> List[List[object]]:
        return [[self.label, p.attacker_qps, round(p.benign_success, 2)] for p in self.points]


def _validation_specs(attacker_qps: float, pattern: str, time_scale: float) -> List[ClientSpec]:
    """Section 2.3.1 timeline: attacker 0-50 s, benign 5-35 s at 3 QPS."""
    return [
        ClientSpec("benign1", 5.0 * time_scale, 35.0 * time_scale, 3.0, "WC"),
        ClientSpec("benign2", 5.0 * time_scale, 35.0 * time_scale, 3.0, "WC"),
        ClientSpec("benign3", 5.0 * time_scale, 35.0 * time_scale, 3.0, "WC"),
        ClientSpec("attacker", 0.0, 50.0 * time_scale, attacker_qps, pattern, is_attacker=True),
    ]


def _run_point(
    attacker_qps: float,
    pattern: str,
    time_scale: float,
    seed: int,
    **config_overrides,
) -> float:
    config_overrides.setdefault("channel_capacity", 100.0)
    config_overrides.setdefault("client_attempts", 1)
    config = ScenarioConfig(
        seed=seed,
        duration=50.0 * time_scale,
        **config_overrides,
    )
    scenario = AttackScenario(config)
    scenario.add_clients(_validation_specs(attacker_qps, pattern, time_scale))
    scenario.run()
    window = (6.0 * time_scale, 35.0 * time_scale)
    ratios = [
        scenario.clients[name].success_ratio(*window)
        for name in ("benign1", "benign2", "benign3")
    ]
    return sum(ratios) / len(ratios)


# ----------------------------------------------------------------------
# the four setups
# ----------------------------------------------------------------------

def run_setup_a(
    rates: Sequence[float] = (1, 2, 3, 4, 5, 6, 7, 8),
    fanouts: Sequence[int] = (7, 5, 9),
    time_scale: float = 1.0,
    seed: int = 42,
) -> List[SweepResult]:
    """Redundant authoritative servers, FF amplification attacker."""
    results = []
    for fanout in fanouts:
        label = f"fanout={fanout} (MAF~{fanout * fanout})"
        points = [
            SweepPoint(rate, _run_point(
                rate, "FF", time_scale, seed,
                target_ans_count=2, ff_fanout=fanout,
            ))
            for rate in rates
        ]
        results.append(SweepResult(label, points))
    return results


def run_setup_b(
    rates: Sequence[float] = (1, 2, 3, 4, 5, 6, 7, 8),
    time_scale: float = 1.0,
    seed: int = 42,
) -> List[SweepResult]:
    """Redundant resolvers: retries spread congestion to both."""
    points = [
        SweepPoint(rate, _run_point(
            rate, "FF", time_scale, seed,
            target_ans_count=2, resolver_count=2, client_attempts=2,
        ))
        for rate in rates
    ]
    return [SweepResult("2 resolvers (retry failover)", points)]


def run_setup_c(
    rates: Sequence[float] = (60, 70, 80, 90, 100, 110, 120, 130),
    time_scale: float = 1.0,
    seed: int = 42,
) -> List[SweepResult]:
    """Forwarder whose RR channels are the bottleneck (WC pattern).

    The forwarder's three upstreams enforce ingress limits of 60/100/100
    QPS; with failover, the effective capacity degrades gracefully, and
    the benign success ratio declines past the channel capacity.
    """
    results = []
    for label, rr_cap, resolver_count in (
        ("3 upstreams (cap 100)", 100.0, 3),
        ("single upstream (cap 60)", 60.0, 1),
        ("single upstream (cap 100)", 100.0, 1),
    ):
        points = [
            SweepPoint(rate, _run_point(
                rate, "WC", time_scale, seed,
                with_forwarder=True,
                resolver_count=resolver_count,
                rr_channel_capacity=rr_cap,
                channel_capacity=100_000.0,  # RA channels uncongested here
                client_attempts=1,
            ))
            for rate in rates
        ]
        results.append(SweepResult(label, points))
    return results


def run_setup_d(
    rates: Sequence[float] = (5, 10, 15, 20, 25, 30, 35, 40, 45, 50),
    egress_sizes: Sequence[int] = (4, 16, 25, 60),
    time_scale: float = 1.0,
    seed: int = 42,
) -> List[SweepResult]:
    """Large resolver system: impact vs egress-set size (FF attacker)."""
    labels = {4: "UltraDNS-like (4)", 16: "Quad9-like (16)", 25: "OpenDNS-like (25)", 60: "Google-like (60)"}
    results = []
    for size in egress_sizes:
        points = [
            SweepPoint(rate, _run_point(
                rate, "FF", time_scale, seed,
                with_forwarder=True,
                forwarder_rotate=True,
                resolver_count=size,
                channel_capacity=100.0,
            ))
            for rate in rates
        ]
        results.append(SweepResult(labels.get(size, f"{size} egresses"), points))
    return results


def run_figure4(
    time_scale: float = 1.0,
    seed: int = 42,
    quick: bool = False,
) -> Dict[str, List[SweepResult]]:
    """All four subfigures; ``quick`` thins the sweeps."""
    a_rates = (1, 3, 5, 8) if quick else (1, 2, 3, 4, 5, 6, 7, 8)
    c_rates = (60, 90, 120) if quick else (60, 70, 80, 90, 100, 110, 120, 130)
    d_rates = (10, 30, 50) if quick else (5, 10, 15, 20, 25, 30, 35, 40, 45, 50)
    d_sizes = (4, 16) if quick else (4, 16, 25, 60)
    return {
        "a": run_setup_a(a_rates, fanouts=(7,) if quick else (7, 5, 9), time_scale=time_scale, seed=seed),
        "b": run_setup_b(a_rates, time_scale=time_scale, seed=seed),
        "c": run_setup_c(c_rates, time_scale=time_scale, seed=seed),
        "d": run_setup_d(d_rates, egress_sizes=d_sizes, time_scale=time_scale, seed=seed),
    }


def main(time_scale: float = 1.0, quick: bool = False) -> None:
    from repro.analysis.provenance import provenance_header

    print(provenance_header("fig4", scale=time_scale, config={"quick": quick}))
    figure = run_figure4(time_scale=time_scale, quick=quick)
    captions = {
        "a": "Figure 4(a) redundant auth servers (FF amplification)",
        "b": "Figure 4(b) redundant resolvers",
        "c": "Figure 4(c) forwarding resolver (WC, RR channel)",
        "d": "Figure 4(d) large resolver system (FF)",
    }
    for key, sweeps in figure.items():
        print(f"\n=== {captions[key]} ===")
        rows = [row for sweep in sweeps for row in sweep.as_rows()]
        print(render_table(["variant", "attacker QPS", "benign success ratio"], rows))


if __name__ == "__main__":
    import sys

    main(time_scale=float(sys.argv[1]) if len(sys.argv) > 1 else 1.0,
         quick="--quick" in sys.argv)
