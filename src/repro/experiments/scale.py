"""``repro scale``: million-client hybrid fluid/packet scenarios.

The fig8-shaped population experiment at paper scale (ISSUE 10): the
benign mass -- heavy/medium/light tiers on cache-friendly zipf pools
plus a promotable NX "suspect" sliver -- rides the fluid cohort model,
while the attacker (and anything the defense flags) stays packet-level
against a DCC-protected resolver.  Three modes:

- ``fluid``   -- cohorts only integrate; promotion disabled.  The
  cheapest mode: per-tick numpy updates regardless of population.
- ``hybrid``  -- fluid cohorts plus the seeded promotion/demotion path:
  heavy-hitter evidence (and DCC monitor verdicts, via the external
  flag refresh) materialize bounded slices as real packet clients.
- ``packet``  -- the reference: the suspect cohort and attacker as
  plain packet clients, no fluid at all.  Small enough to run exactly;
  this is what hybrid verdicts are compared against.

Every mode hashes its run into a selfcheck-style digest (delivered
packet trace + fluid tick ledger + promotion event log) and, with
``--runs 2`` (the default), proves double-run equality -- the CI
``scale-smoke`` job gates on it.  ``--check-verdicts`` (on by default
in mode ``all``) additionally asserts that the hybrid run's DCC
verdicts on the flagged flows match the packet-only reference address
by address.

The fluid/packet coupling is real, not cosmetic: cohort cache-misses
drain the DCC scheduler's *own* per-channel token bucket
(``shim.scheduler.channel_bucket``), and the aggregate fluid backlog
feeds the resolver's overload watermarks through
``OverloadController.external_pressure``.  See docs/SCALING.md.
"""

from __future__ import annotations

import argparse
import hashlib
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dcc.monitor import MonitorConfig
from repro.experiments.common import TARGET_ORIGIN, AttackScenario, ScenarioConfig
from repro.fluid import (
    HAVE_NUMPY,
    FluidBridge,
    PromotionConfig,
    PromotionController,
    build_cohorts,
)
from repro.fluid.cohort import CohortSpec, pool_miss_ratio
from repro.netsim.trace import MessageTrace
from repro.server.overload import OverloadConfig
from repro.server.resolver import ResolverConfig
from repro.workloads.cohorts import (
    SliceMaterializer,
    packet_cohort_clients,
    scale_cohort_specs,
)
from repro.workloads.schedule import ClientSpec

MODES = ("fluid", "hybrid", "packet")


@dataclass
class ScaleConfig:
    """Knobs of one scale scenario (shared across modes for parity)."""

    seed: int = 42
    clients: int = 1_000_000
    duration: float = 20.0
    grace: float = 2.0
    tick: float = 0.1
    #: channel headroom above the estimated benign miss rate (QPS); the
    #: attacker exists to overwhelm exactly this margin
    headroom: float = 400.0
    attacker_rate: float = 1200.0
    attacker_start_frac: float = 0.1
    suspect_clients: int = 8
    suspect_rate: float = 40.0
    promotion: PromotionConfig = field(
        default_factory=lambda: PromotionConfig(
            decide_interval=0.5,
            threshold_qps=20.0,
            promote_per_flag=2,
            max_promoted=32,
            quiet_period=4.0,
        )
    )

    def cohort_specs(self) -> List[CohortSpec]:
        return scale_cohort_specs(
            self.clients,
            self.duration,
            TARGET_ORIGIN,
            destination="",  # filled per-scenario with the target address
            suspect_clients=self.suspect_clients,
            suspect_rate=self.suspect_rate,
        )

    def estimated_miss_qps(self, specs: List[CohortSpec]) -> float:
        """Expected steady-state upstream demand of the benign mass."""
        total = 0.0
        for spec in specs:
            if spec.pattern == "WC_POOL":
                ratio = pool_miss_ratio(
                    spec.aggregate_rate, spec.pool_size, spec.zipf_s, spec.ttl
                )
            else:
                ratio = 1.0
            total += spec.aggregate_rate * ratio
        return total


@dataclass
class ModeResult:
    """Everything one mode run reports (and hashes)."""

    mode: str
    digest: str
    events_processed: int
    packet_messages: int
    wall_seconds: float
    #: address -> verdict string for the flows of interest
    verdicts: Dict[str, str]
    #: fluid conservation ledger (empty in packet mode)
    ledger: Dict[str, float]
    promotions: int
    demotions: int
    promoted_addresses: List[str]
    fluid_served: float
    client_seconds: float

    @property
    def clients_per_sec(self) -> float:
        """Simulated client-seconds of load per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.client_seconds / self.wall_seconds


class ScaleScenario:
    """One mode run: fig8 topology + cohorts + (optional) promotion."""

    def __init__(self, config: ScaleConfig, mode: str) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        if mode != "packet":
            from repro.fluid import require_numpy

            require_numpy()
        self.config = config
        self.mode = mode
        self.specs = config.cohort_specs()
        capacity = config.estimated_miss_qps(self.specs) + config.headroom
        self.scenario = AttackScenario(
            ScenarioConfig(
                seed=config.seed,
                duration=config.duration,
                channel_capacity=capacity,
                use_dcc=True,
                ff_instances=20,
                monitor=MonitorConfig(
                    window=1.0,
                    alarm_threshold=4,
                    suspicion_period=20.0,
                    nxdomain_ratio_threshold=0.2,
                    min_observations=4,
                ),
                resolver_config=ResolverConfig(
                    overload=OverloadConfig(
                        high_watermark=4096,
                        low_watermark=2048,
                    )
                ),
            )
        )
        self.target_addr = self.scenario.target_ans_addrs[0]
        for spec in self.specs:
            spec.destination = self.target_addr
        self.shim = self.scenario.shims[0]
        self.resolver = self.scenario.resolvers[0]
        self.trace = MessageTrace(self.scenario.net, max_records=1_000_000)
        self.scenario.add_clients(
            [
                ClientSpec(
                    name="attacker",
                    start=config.attacker_start_frac * config.duration,
                    stop=config.duration,
                    rate=config.attacker_rate,
                    pattern="NX",
                    is_attacker=True,
                )
            ]
        )
        self.bridge: Optional[FluidBridge] = None
        self.controller: Optional[PromotionController] = None
        self.materializer: Optional[SliceMaterializer] = None
        self._packet_suspects: List = []
        if mode == "packet":
            self._build_packet()
        else:
            self._build_fluid(promotion=(mode == "hybrid"))

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build_packet(self) -> None:
        """Reference: suspect cohort fully packet-level, no fluid."""
        suspect = [spec for spec in self.specs if spec.name == "suspect"][0]
        self._packet_suspects = packet_cohort_clients(
            suspect,
            self.scenario.net,
            [self.resolver.address],
            stop=self.config.duration,
        )
        for client in self._packet_suspects:
            client.start()

    def _build_fluid(self, promotion: bool) -> None:
        sim = self.scenario.sim
        horizon = self.config.duration + self.config.grace
        self.bridge = FluidBridge(sim, tick=self.config.tick, stop_at=horizon)
        # The coupling point: fluid misses drain the DCC scheduler's own
        # channel bucket, so packet flows and fluid load contend for the
        # same tokens.
        self.bridge.add_channel(
            self.target_addr, self.shim.scheduler.channel_bucket(self.target_addr)
        )
        for cohort in build_cohorts(self.specs, self.config.seed):
            self.bridge.add_cohort(cohort)
        if self.resolver.overload is not None:
            self.bridge.pressure_sinks.append(self._fluid_pressure)
        self.bridge.start()
        if not promotion:
            return
        self.materializer = SliceMaterializer(
            self.scenario.net,
            [self.resolver.address],
            stop=self.config.duration,
        )
        self.controller = PromotionController(
            sim, self.bridge, self.config.promotion, seed=self.config.seed
        )
        self.controller.config.stop_at = horizon
        self.controller.materialize = self.materializer.materialize
        self.controller.dematerialize = self.materializer.dematerialize
        self.controller.start()
        sim.schedule(self.config.promotion.decide_interval * 0.5, self._refresh_flags)

    # ------------------------------------------------------------------
    # tick hooks (bound methods: reprolint R4 hygiene)
    # ------------------------------------------------------------------
    def _fluid_pressure(self, now: float, backlog: float) -> None:
        """Fluid backlog -> resolver overload watermarks (pending-request
        equivalents; each backlogged query would occupy one table slot)."""
        self.resolver.overload.external_pressure = backlog

    def _refresh_flags(self) -> None:
        """The DCC-monitor promotion trigger: while the monitor holds a
        promoted client in suspicion or conviction, keep its slice
        materialized (the fluid sketch signal died with the promotion)."""
        now = self.scenario.sim.now
        monitor = self.shim.monitor
        for key, handle in self.controller.live_handles():
            for client in handle.clients:
                if monitor.verdict(client.address).value != "normal":
                    self.controller.flag(key, now)
                    break
        horizon = self.config.duration + self.config.grace
        interval = self.config.promotion.decide_interval
        if now + interval <= horizon + 1e-9:
            self.scenario.sim.schedule(interval, self._refresh_flags)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self) -> ModeResult:
        started = time.perf_counter()
        result = self.scenario.run(grace=self.config.grace)
        wall = time.perf_counter() - started
        if self.controller is not None:
            self.controller.demote_all(self.scenario.sim.now)
        return ModeResult(
            mode=self.mode,
            digest=self._digest(result.events_processed),
            events_processed=result.events_processed,
            packet_messages=len(self.trace.records),
            wall_seconds=wall,
            verdicts=self._verdicts(),
            ledger=self.bridge.ledger() if self.bridge is not None else {},
            promotions=self.controller.promotions if self.controller else 0,
            demotions=self.controller.demotions if self.controller else 0,
            promoted_addresses=self._promoted_addresses(),
            fluid_served=self.bridge.served_total() if self.bridge else 0.0,
            client_seconds=self._client_seconds(),
        )

    def _client_seconds(self) -> float:
        fluid_clients = self.bridge.client_count() if self.bridge is not None else 0
        packet_clients = len(self._packet_suspects) + len(self.scenario.clients)
        if self.materializer is not None:
            packet_clients += len(self.materializer.all_clients)
        return (fluid_clients + packet_clients) * self.config.duration

    def _promoted_addresses(self) -> List[str]:
        if self.materializer is not None:
            return [client.address for client in self.materializer.all_clients]
        if self.mode == "packet":
            return [client.address for client in self._packet_suspects]
        return []

    def _verdicts(self) -> Dict[str, str]:
        """Monitor verdicts on the flows of interest (flagged + attacker)."""
        monitor = self.shim.monitor
        addresses = list(self.scenario._client_addr.values())
        addresses.extend(self._promoted_addresses())
        return {addr: monitor.verdict(addr).value for addr in sorted(addresses)}

    def _digest(self, events_processed: int) -> str:
        """selfcheck-style digest over everything the mode produced."""
        hasher = hashlib.sha256()
        for record in self.trace.records:
            hasher.update(
                (
                    f"{record.time:.9f}|{record.src}|{record.dst}|{record.question}|"
                    f"{int(record.is_response)}|{record.rcode}|{record.wire_bytes}\n"
                ).encode("utf-8")
            )
        hasher.update(f"events={events_processed}\n".encode("utf-8"))
        hasher.update(f"messages={len(self.trace.records)}\n".encode("utf-8"))
        if self.bridge is not None:
            hasher.update(f"fluid={self.bridge.digest()}\n".encode("ascii"))
        if self.controller is not None:
            hasher.update(
                f"promotion={self.controller.events_digest()}\n".encode("ascii")
            )
        return hasher.hexdigest()


def run_mode(config: ScaleConfig, mode: str) -> ModeResult:
    return ScaleScenario(config, mode).run()


def compare_verdicts(hybrid: ModeResult, packet: ModeResult) -> List[str]:
    """Mismatch lines ([] = the acceptance property holds): on every
    flow the hybrid run promoted -- plus the attacker -- the DCC verdict
    must equal the packet-only reference's."""
    problems: List[str] = []
    flagged = [addr for addr in hybrid.promoted_addresses]
    flagged.extend(
        addr for addr, verdict in hybrid.verdicts.items()
        if addr.startswith("10.1.9.")  # attacker address block
    )
    for addr in sorted(set(flagged)):
        got = hybrid.verdicts.get(addr, "normal")
        want = packet.verdicts.get(addr, "normal")
        if got != want:
            problems.append(f"verdict mismatch at {addr}: hybrid={got} packet={want}")
    return problems


def _render(config: ScaleConfig, runs: Dict[str, List[ModeResult]],
            problems: List[str]) -> str:
    from repro.analysis.provenance import provenance_header

    lines = [
        provenance_header(
            "scale",
            seed=config.seed,
            config={
                "clients": config.clients,
                "duration": config.duration,
                "tick": config.tick,
            },
        ),
        f"=== Hybrid fluid/packet scale run (clients={config.clients}, "
        f"duration={config.duration}s) ===",
    ]
    for mode in MODES:
        results = runs.get(mode)
        if not results:
            continue
        first = results[0]
        digests = {r.digest for r in results}
        lines.append(f"--- mode {mode} ({len(results)} run(s)) ---")
        for i, r in enumerate(results, start=1):
            lines.append(f"  run {i}: digest {r.digest}")
        lines.append(
            "  double-run digests identical"
            if len(digests) == 1
            else "  DIGEST MISMATCH ACROSS RUNS"
        )
        lines.append(
            f"  events={first.events_processed} packet_messages={first.packet_messages} "
            f"wall={first.wall_seconds:.2f}s"
        )
        lines.append(
            f"  simulated load: {first.client_seconds:.0f} client-seconds "
            f"({first.clients_per_sec:,.0f} client-seconds/wall-second)"
        )
        if first.ledger:
            led = first.ledger
            lines.append(
                f"  fluid ledger: offered={led['offered']:.0f} hits={led['hits']:.0f} "
                f"upstream={led['upstream']:.0f} timeouts={led['timeouts']:.0f} "
                f"backlog={led['backlog']:.0f} residual={led['residual']:.3g}"
            )
        if first.promotions or first.demotions:
            lines.append(
                f"  promotions={first.promotions} demotions={first.demotions} "
                f"addresses={','.join(first.promoted_addresses) or '-'}"
            )
        interesting = {
            addr: verdict
            for addr, verdict in first.verdicts.items()
            if verdict != "normal"
        }
        lines.append(f"  non-normal verdicts: {interesting or '(none)'}")
    if problems:
        lines.append("--- verdict comparison: FAILED ---")
        lines.extend(f"  {p}" for p in problems)
    else:
        lines.append(
            "--- verdict comparison: hybrid matches packet-only on flagged flows ---"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro scale",
        description="million-client hybrid fluid/packet scenario "
        "(double-run digest per mode; see docs/SCALING.md)",
    )
    parser.add_argument("--clients", type=int, default=1_000_000,
                        help="benign population size (default 10^6)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--duration", type=float, default=20.0,
                        help="virtual seconds of scenario time")
    parser.add_argument("--tick", type=float, default=0.1,
                        help="fluid integration tick (virtual seconds)")
    parser.add_argument("--mode", choices=MODES + ("all",), default="all",
                        help="all = fluid + hybrid + packet reference "
                        "with verdict comparison")
    parser.add_argument("--runs", type=int, default=2,
                        help="runs per mode (2 proves digest determinism)")
    parser.add_argument("--attacker-rate", type=float, default=1200.0)
    parser.add_argument("--no-check-verdicts", action="store_true",
                        help="skip the hybrid-vs-packet verdict gate")
    parser.add_argument("--out", type=str, default="results/scale.txt")
    args = parser.parse_args(argv)

    if not HAVE_NUMPY and args.mode != "packet":
        print("repro scale: numpy is required for fluid/hybrid modes")
        return 2

    config = ScaleConfig(
        seed=args.seed,
        clients=args.clients,
        duration=args.duration,
        tick=args.tick,
        attacker_rate=args.attacker_rate,
    )
    modes = list(MODES) if args.mode == "all" else [args.mode]
    runs: Dict[str, List[ModeResult]] = {}
    ok = True
    for mode in modes:
        results = [run_mode(config, mode) for _ in range(max(1, args.runs))]
        runs[mode] = results
        if len({r.digest for r in results}) != 1:
            ok = False

    problems: List[str] = []
    if (
        not args.no_check_verdicts
        and "hybrid" in runs
        and "packet" in runs
    ):
        problems = compare_verdicts(runs["hybrid"][0], runs["packet"][0])
        if problems:
            ok = False

    report = _render(config, runs, problems)
    print(report)
    if args.out:
        import os

        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(report + "\n")
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
