"""Figure 9: efficacy of DCC's in-band signaling on a resolution chain.

Topology (paper Section 5.1, "Efficacy of Signaling"): a DCC-enabled
forwarder serves the attacker, the heavy client and the light client; a
DCC-enabled recursive resolver serves the forwarder and, directly, the
medium client.  The forwarder->resolver channel is capped at 1000 QPS.
The attacker uses the NX pattern at 200 QPS (Figure 9a) or the FF
pattern at 20 QPS (Figure 9b).

With signaling **off**, the resolver can only see the *forwarder* as the
anomalous client: it polices the forwarder, and the heavy/light clients
are fate-sharing with the attacker (collateral damage).

With signaling **on**, the resolver attaches anomaly signals (with a
countdown) to its responses; the forwarder's DCC attributes them to the
true culprit and starts policing the attacker itself once the countdown
falls below its threshold (5) -- saving the innocuous clients.

The medium client talks to the resolver directly and should always get
its 350 QPS (< 1000/2); the rest goes to the forwarder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.report import render_table, sparkline
from repro.experiments.common import AttackScenario, ScenarioConfig, ScenarioResult
from repro.experiments.fig8_resilience import paper_monitor_config, paper_policy_templates
from repro.workloads.schedule import ClientSpec, FIGURE9_ATTACKER_RATES


@dataclass
class Figure9Run:
    scenario: str
    signaling: bool
    result: ScenarioResult


def _figure9_specs(scenario: str, time_scale: float) -> List[ClientSpec]:
    attacker_rate = FIGURE9_ATTACKER_RATES[scenario]
    attacker_pattern = "NX" if scenario == "nxdomain" else "FF"
    specs = [
        ClientSpec("heavy", 0.0, 60.0, 600.0, "WC"),
        ClientSpec("medium", 0.0, 50.0, 350.0, "WC"),
        ClientSpec("light", 20.0, 60.0, 150.0, "WC"),
        ClientSpec("attacker", 10.0, 60.0, attacker_rate, attacker_pattern, is_attacker=True),
    ]
    return [s.scaled(time_scale, 1.0) for s in specs]


def run_scenario(scenario: str, signaling: bool, scale: float = 1.0, seed: int = 42) -> Figure9Run:
    if scenario not in FIGURE9_ATTACKER_RATES:
        raise ValueError(f"scenario must be one of {sorted(FIGURE9_ATTACKER_RATES)}")
    config = ScenarioConfig(
        seed=seed,
        duration=60.0 * scale,
        channel_capacity=1000.0,
        rr_channel_capacity=1000.0,
        use_dcc=True,
        dcc_on_forwarder=True,
        dcc_signaling=signaling,
        with_forwarder=True,
        #: heavy, light and the attacker sit behind the forwarder; the
        #: medium client talks to the recursive resolver directly
        forwarded_clients=["heavy", "light", "attacker"],
        monitor=paper_monitor_config(time_scale=scale),
        policy_templates=paper_policy_templates(time_scale=scale),
        countdown_threshold=5,
        ff_instances=200,
    )
    scenario_obj = AttackScenario(config)
    scenario_obj.add_clients(_figure9_specs(scenario, scale))
    result = scenario_obj.run()
    return Figure9Run(scenario=scenario, signaling=signaling, result=result)


def run_figure9(scale: float = 1.0, seed: int = 42) -> Dict[str, Dict[str, Figure9Run]]:
    out: Dict[str, Dict[str, Figure9Run]] = {}
    for scenario in ("nxdomain", "amplification"):
        out[scenario] = {
            "off": run_scenario(scenario, signaling=False, scale=scale, seed=seed),
            "on": run_scenario(scenario, signaling=True, scale=scale, seed=seed),
        }
    return out


def collateral_damage(run: Figure9Run, scale: float) -> Dict[str, float]:
    """Success ratios of the forwarder's benign clients during the
    attack window -- the quantity signaling is meant to protect."""
    window = (25.0 * scale, 55.0 * scale)
    return {
        name: run.result.success_ratio(name, *window)
        for name in ("heavy", "light")
    }


def main(scale: float = 1.0, seed: int = 42) -> None:
    from repro.analysis.provenance import provenance_header

    print(provenance_header("fig9", seed=seed, scale=scale))
    runs = run_figure9(scale=scale, seed=seed)
    for scenario, pair in runs.items():
        caption = "Figure 9(a)" if scenario == "nxdomain" else "Figure 9(b)"
        print(f"\n=== {caption} -- attacker pattern "
              f"{'NX @200 QPS' if scenario == 'nxdomain' else 'FF @20 QPS'} ===")
        for label in ("off", "on"):
            run = pair[label]
            print(f"\n--- signaling {label.upper()} ---")
            rows = []
            for client in ("attacker", "heavy", "medium", "light"):
                series = run.result.effective_qps[client]
                mid = series[int(25 * scale):int(55 * scale)]
                rows.append([client, round(sum(mid) / max(1, len(mid)))])
            print(render_table(["client", "mean eff. QPS (25-55s)"], rows))
            damage = collateral_damage(run, scale)
            print(f"    benign-behind-forwarder success: "
                  f"heavy={damage['heavy']:.2f} light={damage['light']:.2f}")
            for client in ("attacker", "heavy", "medium", "light"):
                print(f"  {client:>9s} |{sparkline(run.result.effective_qps[client])}|")


if __name__ == "__main__":
    import sys

    main(scale=float(sys.argv[1]) if len(sys.argv) > 1 else 1.0)
