"""SimSan: an opt-in runtime invariant sanitizer for the simulator.

The reproduction's claims rest on two properties that are easy to break
silently while refactoring:

- **determinism** -- the discrete-event core must replay identically for
  a given seed (heap ordering, lazy-cancellation compaction, and the
  named PRNG streams are the moving parts);
- **scheduler invariants** -- MOPI-FQ's fairness and complexity analysis
  (paper Appendix B) assumes per-output round monotonicity, per-source
  accounting that matches actual queue occupancy, message conservation,
  and non-negative token buckets.

SimSan enforces these at runtime.  It is **off by default** and adds
only a flag check to the hot paths when disabled; enable it with

- ``REPRO_SIMSAN=1`` in the environment (read once at import), or
- :func:`enable` / the ``Simulator(sanitize=True)`` /
  ``MopiFq(sanitize=True)`` constructor arguments for per-instance
  control.

Violations raise :class:`SimSanViolation` (an ``AssertionError``
subclass raised explicitly, so it survives ``python -O``).

See ``docs/STATIC_ANALYSIS.md`` for the full list of checked invariants
and their mapping to the paper.
"""

from __future__ import annotations

import os


class SimSanViolation(AssertionError):
    """A runtime invariant of the simulator or a DCC component broke."""


def _truthy(value: str) -> bool:
    return value.strip().lower() not in ("", "0", "false", "no", "off")


#: Global sanitizer switch.  Hot paths either read this directly (token
#: buckets) or snapshot it at construction time (``Simulator``,
#: ``MopiFq``), so flipping it mid-run affects objects built afterwards.
ENABLED: bool = _truthy(os.environ.get("REPRO_SIMSAN", ""))


def enable() -> None:
    """Turn the sanitizer on for subsequently constructed objects."""
    global ENABLED
    ENABLED = True


def disable() -> None:
    """Turn the sanitizer off (the default)."""
    global ENABLED
    ENABLED = False


def fail(message: str) -> None:
    """Raise a :class:`SimSanViolation`; never stripped by ``-O``."""
    raise SimSanViolation(message)
