"""repro: a reproduction of "DNS Congestion Control in Adversarial
Settings" (SOSP 2024).

Top-level convenience imports; the subpackages are:

- :mod:`repro.dnscore` -- DNS data model (names, records, messages,
  EDNS, wire codec, zones);
- :mod:`repro.netsim` -- deterministic discrete-event network simulator;
- :mod:`repro.server` -- authoritative servers, recursive resolvers,
  forwarders, rate limiting, caching;
- :mod:`repro.dcc` -- the DCC framework: MOPI-FQ scheduler, anomaly
  monitoring, pre-queue policing, in-band signaling, the non-invasive
  shim;
- :mod:`repro.workloads` -- attack patterns, zone generators, traffic
  sources, evaluation schedules;
- :mod:`repro.measure` -- the rate-limit measurement study;
- :mod:`repro.analysis` -- max-min fairness math and experiment
  post-processing;
- :mod:`repro.experiments` -- drivers regenerating each paper
  table/figure.
"""

from repro._version import __version__
from repro.dcc import DccConfig, DccShim, MopiFq, MopiFqConfig
from repro.netsim import Network, Simulator
from repro.server import (
    AuthoritativeServer,
    Forwarder,
    ForwarderConfig,
    RecursiveResolver,
    ResolverConfig,
)

__all__ = [
    "DccConfig",
    "DccShim",
    "MopiFq",
    "MopiFqConfig",
    "Network",
    "Simulator",
    "AuthoritativeServer",
    "Forwarder",
    "ForwarderConfig",
    "RecursiveResolver",
    "ResolverConfig",
    "__version__",
]
